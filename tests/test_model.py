"""Unit tests for the model substrate: shapes, FLOPs, memory."""

import pytest

from repro.model.flops import (
    batch_decode_flops,
    batch_prefill_flops,
    decode_flops,
    prefill_flops,
)
from repro.model.memory import (
    decode_read_bytes,
    kv_cache_bytes,
    max_tokens_in_memory,
    prefill_read_bytes,
)
from repro.model.spec import LLAMA2_70B, LWM_7B_1M, AttentionKind, ModelSpec


class TestModelSpec:
    def test_lwm_is_llama2_7b_shape(self):
        assert LWM_7B_1M.hidden_size == 4096
        assert LWM_7B_1M.num_layers == 32
        assert LWM_7B_1M.head_dim == 128
        assert LWM_7B_1M.attention_kind == AttentionKind.MHA

    def test_param_count_close_to_7b(self):
        assert 6.5e9 < LWM_7B_1M.param_count < 7.0e9

    def test_paper_488gb_anchor(self):
        """1M tokens of KV cache is 488 GiB for the 7B model (§1)."""
        gib = LWM_7B_1M.kv_bytes_per_token * 1_000_000 / 2**30
        assert gib == pytest.approx(488.3, abs=0.5)

    def test_gqa_kv_smaller_than_mha(self):
        assert LLAMA2_70B.attention_kind == AttentionKind.GQA
        per_hidden_70b = LLAMA2_70B.kv_bytes_per_token / LLAMA2_70B.hidden_size
        per_hidden_7b = LWM_7B_1M.kv_bytes_per_token / LWM_7B_1M.hidden_size
        assert per_hidden_70b < per_hidden_7b

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            ModelSpec(
                name="bad", hidden_size=100, num_layers=1, num_heads=3,
                num_kv_heads=3, ffn_hidden_size=10, vocab_size=10,
                context_window=10,
            )

    def test_rejects_bad_kv_head_grouping(self):
        with pytest.raises(ValueError):
            ModelSpec(
                name="bad", hidden_size=128, num_layers=1, num_heads=8,
                num_kv_heads=3, ffn_hidden_size=10, vocab_size=10,
                context_window=10,
            )

    def test_attention_flops_quadratic(self):
        f1 = LWM_7B_1M.attention_flops(1000, 500)
        f2 = LWM_7B_1M.attention_flops(2000, 1000)
        assert f2 == pytest.approx(4 * f1)


class TestFlops:
    def test_prefill_superlinear_in_length(self):
        """Doubling the prompt more than doubles prefill FLOPs (attention)."""
        f1 = prefill_flops(LWM_7B_1M, 10_000)
        f2 = prefill_flops(LWM_7B_1M, 20_000)
        assert f2 > 2 * f1

    def test_decode_flops_grow_with_context(self):
        assert decode_flops(LWM_7B_1M, 10_000) > decode_flops(LWM_7B_1M, 100)

    def test_decode_much_cheaper_than_prefill(self):
        assert decode_flops(LWM_7B_1M, 1000) < prefill_flops(LWM_7B_1M, 1000) / 100

    def test_batch_flops_sum(self):
        single = prefill_flops(LWM_7B_1M, 500)
        assert batch_prefill_flops(LWM_7B_1M, [500, 500]) == pytest.approx(2 * single)

    def test_batch_decode_flops_sum(self):
        single = decode_flops(LWM_7B_1M, 700)
        assert batch_decode_flops(LWM_7B_1M, [700] * 3) == pytest.approx(3 * single)

    def test_rejects_nonpositive_input(self):
        with pytest.raises(ValueError):
            prefill_flops(LWM_7B_1M, 0)


class TestMemory:
    def test_kv_cache_bytes_linear(self):
        assert kv_cache_bytes(LWM_7B_1M, 2000) == 2 * kv_cache_bytes(LWM_7B_1M, 1000)

    def test_decode_reads_weights_plus_kv(self):
        no_kv = decode_read_bytes(LWM_7B_1M, [])
        with_kv = decode_read_bytes(LWM_7B_1M, [1000])
        assert no_kv == LWM_7B_1M.weight_bytes
        assert with_kv == no_kv + kv_cache_bytes(LWM_7B_1M, 1000)

    def test_prefill_reads_grow_with_tokens(self):
        small = prefill_read_bytes(LWM_7B_1M, [100])
        large = prefill_read_bytes(LWM_7B_1M, [100_000])
        assert large > small

    def test_max_tokens_in_memory(self):
        budget = 10 * LWM_7B_1M.kv_bytes_per_token
        assert max_tokens_in_memory(LWM_7B_1M, budget) == 10

    def test_max_tokens_rejects_negative(self):
        with pytest.raises(ValueError):
            max_tokens_in_memory(LWM_7B_1M, -1)
