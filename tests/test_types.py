"""Unit tests for the shared request/result types."""

import pytest

from repro.types import Phase, Request, RequestState, ScalingEvent, ServeResult
from tests.conftest import make_request


class TestRequestValidation:
    def test_rejects_zero_input(self):
        with pytest.raises(ValueError):
            Request(request_id=0, input_len=0, output_len=5)

    def test_rejects_negative_output(self):
        with pytest.raises(ValueError):
            Request(request_id=0, input_len=5, output_len=-1)

    def test_max_tokens_defaults_to_output_len(self):
        request = make_request(input_len=10, output_len=7)
        assert request.max_tokens == 7

    def test_explicit_max_tokens_preserved(self):
        request = make_request(input_len=10, output_len=7, max_tokens=99)
        assert request.max_tokens == 99


class TestRequestDerivedProperties:
    def test_current_len_counts_generated(self):
        request = make_request(input_len=100, output_len=10)
        assert request.current_len == 100
        request.generated = 4
        assert request.current_len == 104

    def test_max_total_len(self):
        request = make_request(input_len=100, output_len=10)
        assert request.max_total_len == 110

    def test_phase_transitions_on_first_token(self):
        request = make_request()
        assert request.phase == Phase.PREFILL
        request.generated = 1
        assert request.phase == Phase.DECODE

    def test_finished_flag(self):
        request = make_request()
        assert not request.finished
        request.state = RequestState.FINISHED
        assert request.finished


class TestRequestLatencies:
    def _finished_request(self) -> Request:
        request = make_request(input_len=100, output_len=10, arrival=1.0)
        request.prefill_start = 2.0
        request.prefill_end = 3.0
        request.finish_time = 5.0
        request.state = RequestState.FINISHED
        return request

    def test_end_to_end_latency(self):
        assert self._finished_request().end_to_end_latency == pytest.approx(4.0)

    def test_prefill_latency_from_arrival(self):
        assert self._finished_request().prefill_latency == pytest.approx(2.0)

    def test_decode_latency(self):
        assert self._finished_request().decode_latency == pytest.approx(2.0)

    def test_normalized_latency(self):
        request = self._finished_request()
        assert request.normalized_latency == pytest.approx(4.0 / 110)

    def test_normalized_input_latency(self):
        assert self._finished_request().normalized_input_latency == pytest.approx(2.0 / 100)

    def test_normalized_output_latency(self):
        assert self._finished_request().normalized_output_latency == pytest.approx(2.0 / 10)

    def test_unfinished_request_raises(self):
        request = make_request()
        with pytest.raises(ValueError):
            _ = request.end_to_end_latency

    def test_record_first_token_only_once(self):
        request = make_request()
        request.record_first_token(1.0)
        request.record_first_token(9.0)
        assert request.first_token_time == 1.0


class TestScalingEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ScalingEvent(time=0.0, kind="sideways", group_before=(0,), group_after=(0, 1))

    def test_accepts_scale_up(self):
        event = ScalingEvent(time=1.0, kind="scale_up", group_before=(0,), group_after=(0, 1))
        assert event.kind == "scale_up"


class TestServeResult:
    def test_completed_fraction(self):
        done = make_request()
        done.state = RequestState.FINISHED
        pending = make_request()
        result = ServeResult(system="x", requests=[done, pending])
        assert result.completed_fraction == pytest.approx(0.5)

    def test_empty_result(self):
        result = ServeResult(system="x")
        assert result.completed_fraction == 0.0
        assert result.finished_requests == []
