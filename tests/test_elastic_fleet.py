"""Tests for the elastic fleet control plane: cluster policy, autoscaler,
work stealer, KV migrator, replica mutation surface, and the
bit-identical static gate."""

import hashlib

import pytest

from repro.experiments.systems import make_fleet, make_system
from repro.fleet import (
    AutoscalerConfig,
    ClusterPolicy,
    FleetServer,
    KVMigrator,
    QueueDepthAutoscaler,
    StealConfig,
    WorkStealer,
    make_router,
)
from repro.metrics.fleet import ElasticStats, fleet_load_report
from repro.sessions import SessionSpec, make_session_trace
from repro.types import RequestState
from repro.workloads.arrival import BurstyArrivals
from repro.workloads.datasets import MIXED, SHAREGPT
from repro.workloads.trace_gen import clone_requests, make_trace
from tests.conftest import make_request


class ElasticStub:
    """Control-plane-facing replica stub with settable probe state."""

    def __init__(self, replica_id, queued=0, kv_used=0.0, tokens=0, free=1000,
                 matches=None):
        self.replica_id = replica_id
        self.online = True
        self.draining = False
        self._queued = [make_request() for _ in range(queued)]
        self._kv_used = kv_used
        self._tokens = tokens
        self._free = free
        self._matches = matches or {}

    @property
    def available(self):
        return self.online and not self.draining

    def queued_requests(self):
        return list(self._queued)

    def kv_used_fraction(self):
        return self._kv_used

    def kv_free(self):
        return self._free

    def outstanding_requests(self):
        return len(self._queued)

    def outstanding_tokens(self):
        return self._tokens

    def prefix_match_len(self, request):
        return self._matches.get(request.request_id, 0)


class TestClusterPolicy:
    def test_requires_router(self):
        with pytest.raises(ValueError):
            ClusterPolicy(router=None)

    def test_has_actuators_and_name(self):
        bare = ClusterPolicy(make_router("least-kv"))
        assert not bare.has_actuators
        assert bare.name == "least-kv"
        full = ClusterPolicy(
            make_router("affinity"),
            autoscaler=QueueDepthAutoscaler(),
            stealer=WorkStealer(),
        )
        assert full.has_actuators
        assert full.name == "affinity+autoscale+steal"

    def test_place_skips_unavailable_replicas(self):
        replicas = [ElasticStub(0), ElasticStub(1), ElasticStub(2)]
        replicas[0].draining = True
        replicas[2].online = False
        policy = ClusterPolicy(make_router("round-robin"))
        for _ in range(3):
            assert policy.place(make_request(), replicas, 0.0).replica_id == 1

    def test_place_falls_back_to_full_fleet_when_all_parked(self):
        replicas = [ElasticStub(0), ElasticStub(1)]
        for handle in replicas:
            handle.online = False
        policy = ClusterPolicy(make_router("round-robin"))
        assert policy.place(make_request(), replicas, 0.0) in replicas

    def test_fleet_server_requires_exactly_one_of_router_or_policy(self):
        servers = [make_system("vllm")]
        with pytest.raises(ValueError):
            FleetServer(servers)
        with pytest.raises(ValueError):
            FleetServer(
                servers,
                router=make_router("round-robin"),
                policy=ClusterPolicy(make_router("round-robin")),
            )


class TestQueueDepthAutoscaler:
    def test_hysteresis_delays_action(self):
        scaler = QueueDepthAutoscaler(AutoscalerConfig(hysteresis_ticks=3))
        replicas = [ElasticStub(0, queued=10), ElasticStub(1, queued=10)]
        replicas.append(ElasticStub(2))
        replicas[2].online = False  # parked spare
        assert scaler.decide(replicas, 0.0) == []
        assert scaler.decide(replicas, 0.5) == []
        actions = scaler.decide(replicas, 1.0)
        assert actions == [("unpark", replicas[2])]

    def test_scale_in_prefers_least_loaded_and_respects_min_online(self):
        config = AutoscalerConfig(hysteresis_ticks=1, min_online=2)
        scaler = QueueDepthAutoscaler(config)
        replicas = [
            ElasticStub(0, tokens=500),
            ElasticStub(1, tokens=10),
            ElasticStub(2, tokens=100),
        ]
        actions = scaler.decide(replicas, 0.0)
        assert actions == [("drain", replicas[1])]
        replicas[1].draining = True
        # Now only two accepting replicas remain: min_online blocks more.
        assert scaler.decide(replicas, 0.5) == []

    def test_kv_pressure_alone_triggers_scale_out(self):
        scaler = QueueDepthAutoscaler(AutoscalerConfig(hysteresis_ticks=1))
        replicas = [ElasticStub(0, kv_used=0.95), ElasticStub(1)]
        replicas[1].online = False
        actions = scaler.decide(replicas, 0.0)
        assert actions == [("unpark", replicas[1])]

    def test_unpark_prefers_cancelling_a_drain(self):
        scaler = QueueDepthAutoscaler(AutoscalerConfig(hysteresis_ticks=1))
        draining = ElasticStub(1, queued=0)
        draining.draining = True
        parked = ElasticStub(2)
        parked.online = False
        replicas = [ElasticStub(0, queued=10), draining, parked]
        assert scaler.decide(replicas, 0.0) == [("unpark", draining)]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(low_queue_depth=5.0, high_queue_depth=1.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(hysteresis_ticks=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_online=0)


class TestWorkStealer:
    def test_steals_from_deepest_to_shallowest(self):
        stealer = WorkStealer(StealConfig(min_queue_gap=2, max_moves_per_tick=10))
        replicas = [ElasticStub(0, queued=6), ElasticStub(1, queued=0)]
        moves = stealer.plan(replicas, 0.0)
        assert moves
        assert all(m.src is replicas[0] and m.dst is replicas[1] for m in moves)
        # Moves stop once the depth gap closes below the threshold.
        assert len(moves) == 3  # 6/0 -> 5/1 -> 4/2 -> 3/3 stops (gap 0 < 2)

    def test_respects_move_budget(self):
        stealer = WorkStealer(StealConfig(max_moves_per_tick=1))
        replicas = [ElasticStub(0, queued=8), ElasticStub(1)]
        assert len(stealer.plan(replicas, 0.0)) == 1

    def test_quiet_on_balanced_fleet(self):
        stealer = WorkStealer()
        replicas = [ElasticStub(0, queued=3), ElasticStub(1, queued=2)]
        assert stealer.plan(replicas, 0.0) == []

    def test_affinity_guard_blocks_hot_prefix_steals(self):
        replicas = [ElasticStub(0, queued=4), ElasticStub(1)]
        hot = {r.request_id: 5_000 for r in replicas[0]._queued}
        replicas[0]._matches = hot
        stealer = WorkStealer(StealConfig(affinity_guard_tokens=256))
        assert stealer.plan(replicas, 0.0, can_migrate=False) == []
        # With the migrator armed the same moves are allowed (the extent
        # travels with the request).
        moves = stealer.plan(replicas, 0.0, can_migrate=True)
        assert moves and all(m.reprefill_tokens == 5_000 for m in moves)

    def test_never_plans_on_single_available_replica(self):
        replicas = [ElasticStub(0, queued=9), ElasticStub(1)]
        replicas[1].online = False
        assert WorkStealer().plan(replicas, 0.0) == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StealConfig(min_queue_gap=0)
        with pytest.raises(ValueError):
            StealConfig(max_moves_per_tick=0)


class TestReplicaHandleMutation:
    def _handle(self, prefix_cache=False):
        from repro.fleet.server import ReplicaHandle
        from repro.sim.engine import Simulator

        handle = ReplicaHandle(
            0, make_system("loongserve", prefix_cache=prefix_cache)
        )
        handle.prepare(Simulator())
        return handle

    def test_withdraw_round_trip(self):
        src = self._handle()
        dst = self._handle()
        request = make_request(input_len=200, output_len=4)
        src.submit(request)
        assert src.queued_requests() == [request]
        assert src.withdraw(request)
        assert src.queued_requests() == []
        assert request not in src.routed
        assert request not in src.server.pending
        assert request not in src.server._all_requests
        dst.accept_stolen(request)
        assert dst.stolen_in == 1
        assert src.stolen_out == 1
        assert request in dst.routed

    def test_withdraw_refuses_started_requests(self):
        handle = self._handle()
        request = make_request()
        request.state = RequestState.PREFILLING
        assert not handle.withdraw(request)

    def test_drain_park_unpark_lifecycle(self):
        handle = self._handle()
        assert handle.available
        handle.drain()
        assert not handle.available and handle.online
        request = make_request()
        handle.submit(request)
        assert not handle.park()  # outstanding work blocks parking
        request.state = RequestState.FINISHED
        assert handle.park()
        assert not handle.online
        handle.unpark()
        assert handle.available

    def test_kv_probe_uses_cached_sources(self):
        """The shape dispatch (and per-probe dict rebuild) must run once,
        not on every router probe of every arrival."""
        handle = self._handle()
        calls = {"n": 0}
        original = handle._resolve_kv_sources

        def counting():
            calls["n"] += 1
            return original()

        handle._resolve_kv_sources = counting
        baseline = handle.kv_free()
        for _ in range(50):
            assert handle.kv_free() == baseline
        assert calls["n"] <= 1  # resolved at most once across 51 probes
        handle.refresh_probes()
        handle.kv_free()
        assert calls["n"] == 2  # the control tick is the invalidation point

    def test_kv_probe_values_match_across_shapes(self):
        from repro.fleet.server import ReplicaHandle
        from repro.sim.engine import Simulator

        for name in ("loongserve", "vllm", "distserve", "replicated-tp2"):
            handle = ReplicaHandle(0, make_system(name))
            handle.prepare(Simulator())
            free = handle.kv_free_map()
            assert handle.kv_free() == sum(free.values())
            assert 0.0 <= handle.kv_used_fraction() <= 1.0
            assert handle.kv_capacity() >= handle.kv_free()

    def test_prefix_export_import_between_handles(self):
        src = self._handle(prefix_cache=True)
        dst = self._handle(prefix_cache=True)
        trace = make_session_trace(rate=5.0, num_sessions=4, seed=13)
        follow_ups = [r for r in trace if r.turn > 0]
        assert follow_ups
        # Seed the source cache by serving the trace on its server.
        for request in trace:
            src.server.submit(request)
        src.server.sim.run_until_idle()
        probe = clone_requests([follow_ups[-1]])[0]
        src_match = src.prefix_match_len(probe)
        assert src_match > 0
        assert dst.prefix_match_len(probe) == 0

        tokens = src.export_prefix(probe)
        assert len(tokens) == src_match
        imported = dst.import_prefix(tokens, now=1.0)
        assert imported == src_match
        assert dst.prefix_match_len(probe) == src_match
        # Idempotent: a second import finds everything resident already.
        assert dst.import_prefix(tokens, now=2.0) == 0

    def test_resident_sequences_and_clear(self):
        handle = self._handle(prefix_cache=True)
        trace = make_session_trace(rate=5.0, num_sessions=3, seed=14)
        for request in trace:
            handle.server.submit(request)
        handle.server.sim.run_until_idle()
        sequences = handle.resident_prefix_sequences()
        assert sequences
        stamps = [stamp for stamp, _ in sequences]
        assert stamps == sorted(stamps, reverse=True)  # MRU first
        freed = handle.clear_prefix_cache()
        assert freed > 0
        assert handle.resident_prefix_sequences() == []

    def test_handles_without_cache_degrade_gracefully(self):
        handle = self._handle(prefix_cache=False)
        request = make_request()
        assert handle.export_prefix(request) == ()
        assert handle.import_prefix((1, 2, 3), now=0.0) == 0
        assert handle.resident_prefix_sequences() == []
        assert handle.clear_prefix_cache() == 0
        assert not handle.has_prefix_cache


class TestStaticGate:
    """With every actuator off, fleet behaviour must be bit-identical to
    the pre-control-plane route-once front-end.  The golden hashes are
    per-request timeline signatures recorded on the pre-PR build
    (request ids are excluded — they depend on test execution order).
    Only update them for an *intentional* scheduling change."""

    @staticmethod
    def _signature(result):
        signature = sorted(
            (r.input_len, r.output_len, round(r.arrival_time, 9),
             round(r.prefill_end, 9), round(r.first_token_time, 9),
             round(r.finish_time, 9), r.preemptions)
            for r in result.requests
        )
        return hashlib.md5(repr(signature).encode()).hexdigest()

    def test_mixed_least_kv_fleet_is_bit_identical(self):
        trace = make_trace(MIXED, rate=4.0, num_requests=30, seed=7)
        fleet = make_fleet(
            "loongserve", replicas=3, router="least-kv", requests=trace
        )
        result = fleet.run(clone_requests(trace))
        assert self._signature(result) == "8122bb3adaa19bf6518c165082fbc8a7"
        assert result.elastic is None

    def test_sessions_affinity_fleet_is_bit_identical(self):
        trace = make_session_trace(rate=0.8, num_sessions=10, seed=5)
        fleet = make_fleet(
            "loongserve", replicas=2, router="affinity",
            requests=trace, prefix_cache=True,
        )
        result = fleet.run(clone_requests(trace))
        assert self._signature(result) == "78b843cd0ebb16e37980fdedb9e90ea0"
        assert result.elastic is None

    def test_migrate_kv_requires_prefix_cache(self):
        with pytest.raises(ValueError, match="prefix_cache"):
            make_fleet("loongserve", replicas=2, migrate_kv=True)


class TestControlLoopEndToEnd:
    def _bursty_trace(self, rate=4.0, count=40, seed=17):
        return make_trace(
            MIXED, rate=rate, num_requests=count, seed=seed,
            arrivals=BurstyArrivals(rate=rate),
        )

    def test_every_request_served_exactly_once_with_stealing(self):
        trace = self._bursty_trace()
        fleet = make_fleet(
            "loongserve", replicas=4, router="round-robin",
            requests=trace, steal=True,
        )
        result = fleet.run(clone_requests(trace))
        served = [
            r.request_id
            for replica in result.per_replica
            for r in replica.requests + replica.aborted
        ]
        assert sorted(served) == sorted(r.request_id for r in trace)
        assert len(set(served)) == len(served)
        assert result.elastic.stolen_requests > 0
        assert len(result.finished_requests) == len(trace)

    def test_autoscaler_records_capacity_timeline(self):
        trace = self._bursty_trace()
        fleet = make_fleet(
            "loongserve", replicas=4, router="round-robin",
            requests=trace, autoscale=True,
        )
        result = fleet.run(clone_requests(trace))
        elastic = result.elastic
        assert elastic.control_ticks > 0
        assert elastic.capacity_timeline[0] == (0.0, 4)
        onlines = [online for _, online in elastic.capacity_timeline]
        assert all(1 <= online <= 4 for online in onlines)
        # The cold phases of a bursty trace must trigger scale-in.
        assert elastic.scale_downs > 0
        assert elastic.replica_seconds(result.makespan) < 4 * result.makespan
        assert len(result.finished_requests) == len(trace)

    def test_rerun_is_clean_with_actuators(self):
        trace = self._bursty_trace(count=25)
        fleet = make_fleet(
            "loongserve", replicas=3, router="round-robin",
            requests=trace, autoscale=True, steal=True,
        )
        first = fleet.run(clone_requests(trace))
        second = fleet.run(clone_requests(trace))
        lat_a = sorted(r.normalized_latency for r in first.finished_requests)
        lat_b = sorted(r.normalized_latency for r in second.finished_requests)
        assert lat_a == pytest.approx(lat_b)
        assert (
            first.elastic.capacity_timeline == second.elastic.capacity_timeline
        )

    def test_kv_migration_preserves_hit_rate_after_scale_in(self):
        """Acceptance gate: rebalanced sessions keep >= 80% of the static
        affinity router's token hit rate."""
        spec = SessionSpec(think_time_mean_s=45.0, mean_turns=3.0)
        trace = make_session_trace(spec, rate=3.0, num_sessions=14, seed=11)

        def hit_rate(result):
            cache = result.cache_stats or {}
            total = cache.get("hit_tokens", 0) + cache.get("miss_tokens", 0)
            return cache.get("hit_tokens", 0) / total if total else 0.0

        static = make_fleet(
            "loongserve", replicas=2, router="affinity",
            requests=trace, prefix_cache=True,
        ).run(clone_requests(trace))
        migrated = make_fleet(
            "loongserve", replicas=2, router="affinity",
            requests=trace, prefix_cache=True,
            autoscale=True, steal=True, migrate_kv=True,
        ).run(clone_requests(trace))

        assert hit_rate(static) > 0.5  # the scenario has real affinity value
        assert migrated.elastic.scale_downs > 0  # a rebalance happened
        assert migrated.elastic.migrated_kv_tokens > 0
        assert hit_rate(migrated) >= 0.8 * hit_rate(static)

    def test_migration_charges_wall_clock_on_stolen_requests(self):
        """A steal-coupled migration must delay the stolen request's
        re-submission by the modelled transfer time (not teleport KV)."""
        from repro.fleet.control import FleetController
        from repro.fleet.server import ReplicaHandle
        from repro.sim.engine import Simulator
        from repro.costmodel.comm import CollectiveModel

        sim = Simulator()
        src = ReplicaHandle(0, make_system("loongserve", prefix_cache=True))
        dst = ReplicaHandle(1, make_system("loongserve", prefix_cache=True))
        src.prepare(sim)
        dst.prepare(sim)
        trace = make_session_trace(rate=5.0, num_sessions=4, seed=13)
        for request in trace:
            src.submit(request)
        sim.run_until_idle()

        follow_up = clone_requests([r for r in trace if r.turn > 0])[-1]
        follow_up.arrival_time = sim.now
        src.submit(follow_up)
        config = src.server.config
        policy = ClusterPolicy(
            make_router("affinity"),
            stealer=WorkStealer(StealConfig(min_queue_gap=1)),
            migrator=KVMigrator(
                collectives=CollectiveModel(cluster=config.cluster),
                model=config.model,
                tensor_parallel=config.tensor_parallel,
            ),
        )
        stats = ElasticStats()
        controller = FleetController(
            policy=policy, replicas=[src, dst], sim=sim, stats=stats,
        )
        # Withdraw-and-migrate directly (one tick's steal execution).
        controller._steal()
        assert stats.stolen_requests == 1
        assert stats.migrated_kv_tokens > 0
        assert stats.migration_seconds > 0
        # The export/import ledger balances: exports are charged only
        # for tokens the destination actually installed.
        assert (
            src.server.prefix_cache.stats.exported_tokens
            == dst.server.prefix_cache.stats.imported_tokens
            == stats.migrated_kv_tokens
        )
        # The request is in flight behind its KV: not yet queued on dst.
        assert follow_up not in dst.routed
        sim.run_until_idle()
        assert follow_up in dst.routed
        assert follow_up.finished


class TestElasticStats:
    def test_capacity_timeline_dedup_and_replica_seconds(self):
        stats = ElasticStats()
        stats.record_capacity(0.0, 4)
        stats.record_capacity(1.0, 4)  # no transition: deduplicated
        stats.record_capacity(10.0, 2)
        stats.record_capacity(20.0, 3)
        assert stats.capacity_timeline == [(0.0, 4), (10.0, 2), (20.0, 3)]
        # 4*10 + 2*10 + 3*10 over a 30s makespan.
        assert stats.replica_seconds(30.0) == pytest.approx(90.0)

    def test_render_mentions_every_actuator(self):
        stats = ElasticStats()
        stats.record_capacity(0.0, 2)
        stats.record_action(1.0, "park", 1)
        stats.stolen_requests = 3
        stats.steal_reprefill_tokens = 1200
        stats.migrated_kv_tokens = 900
        stats.migrations = 2
        rendered = stats.render(makespan=10.0)
        assert "replicas online" in rendered
        assert "work stealing: 3 requests" in rendered
        assert "kv migration: 900 tokens" in rendered

    def test_load_report_includes_elastic_block(self):
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=12, seed=3)
        fleet = make_fleet(
            "loongserve", replicas=2, requests=trace, autoscale=True
        )
        result = fleet.run(clone_requests(trace))
        report = fleet_load_report(
            result.per_replica, elastic=result.elastic, makespan=result.makespan
        )
        rendered = report.render()
        assert "replicas online" in rendered
        assert "work stealing" in rendered
        # Static reports stay unchanged.
        static = fleet_load_report(result.per_replica)
        assert "replicas online" not in static.render()


class TestElasticCLI:
    def test_serve_with_actuators_prints_timeline(self, capsys):
        from repro.__main__ import main as repro_main

        code = repro_main(
            ["serve", "--replicas", "3", "--router", "least-kv",
             "--dataset", "mixed", "--rate", "6", "-n", "15", "--seed", "9",
             "--autoscale", "--steal"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "least-kv+autoscale+steal" in out
        assert "replicas online" in out
        assert "work stealing" in out

    def test_migrate_kv_requires_prefix_cache_flag(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(
            ["serve", "--replicas", "2", "--migrate-kv"]
        ) == 2
        assert "--prefix-cache" in capsys.readouterr().err

    def test_actuators_require_a_fleet(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(["serve", "--steal"]) == 2
        assert "--replicas" in capsys.readouterr().err
