"""Tests for the command-line interfaces."""

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.__main__ import main as experiments_main


class TestServeCLI:
    def test_serve_prints_metrics(self, capsys):
        code = repro_main(
            ["serve", "--system", "loongserve", "--dataset", "sharegpt",
             "--rate", "5", "-n", "10", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "requests: 10/10 finished" in out
        assert "per-token" in out

    def test_serve_with_timeline(self, capsys):
        code = repro_main(
            ["serve", "--dataset", "sharegpt", "--rate", "5", "-n", "5",
             "--timeline"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "utilization:" in out
        assert "P = prefill" in out

    def test_gen_trace_then_replay(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert repro_main(
            ["gen-trace", "--dataset", "mixed", "--rate", "1", "-n", "8",
             "-o", str(path)]
        ) == 0
        assert path.exists()
        assert repro_main(
            ["serve", "--system", "vllm", "--trace", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "vLLM" in out

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            repro_main(["serve", "--system", "magic"])

    def test_serve_fleet_prints_replica_loads(self, capsys):
        code = repro_main(
            ["serve", "--system", "loongserve", "--replicas", "3",
             "--router", "least-kv", "--dataset", "sharegpt",
             "--rate", "8", "-n", "12", "--seed", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "LoongServe x3 [least-kv]" in out
        assert "requests: 12/12 finished" in out
        assert "SLO attainment:" in out
        assert "per-replica load:" in out
        assert "token imbalance" in out

    def test_rejects_unknown_router(self):
        with pytest.raises(SystemExit):
            repro_main(["serve", "--replicas", "2", "--router", "magic"])


class TestExperimentsCLI:
    def test_figure2_runs(self, capsys):
        assert experiments_main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "paper anchor" in out

    def test_figure14_runs(self, capsys):
        assert experiments_main(["figure14"]) == 0
        out = capsys.readouterr().out
        assert "proactive" in out

    def test_figure15_runs(self, capsys):
        assert experiments_main(["figure15"]) == 0
        out = capsys.readouterr().out
        assert "max deviation" in out

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            experiments_main(["figure99"])
