"""Tests for the Scaling Information Base (SQLite profiling store)."""

import os
import tempfile

from repro.cluster.cluster import Cluster
from repro.core.sib import ScalingInformationBase
from repro.costmodel.latency import RooflineCostModel
from repro.model.spec import LWM_7B_1M
from repro.parallel.strategy import ParallelismStrategy

SP2 = ParallelismStrategy(tensor_parallel=2, sequence_parallel=2)
SP4 = ParallelismStrategy(tensor_parallel=2, sequence_parallel=4)


class TestRecordAndQuery:
    def test_record_roundtrip(self):
        sib = ScalingInformationBase()
        sib.record(SP2, [100, 200], 0.05)
        samples = sib.samples(SP2)
        assert samples == [([100, 200], 0.05)]

    def test_samples_isolated_per_strategy(self):
        sib = ScalingInformationBase()
        sib.record(SP2, [100], 0.05)
        sib.record(SP4, [100], 0.03)
        assert len(sib.samples(SP2)) == 1
        assert len(sib.samples(SP4)) == 1

    def test_sample_count(self):
        sib = ScalingInformationBase()
        for _ in range(3):
            sib.record(SP2, [10], 0.01)
        assert sib.sample_count() == 3
        assert sib.sample_count(SP2) == 3
        assert sib.sample_count(SP4) == 0

    def test_strategies_listed(self):
        sib = ScalingInformationBase()
        sib.record(SP4, [10], 0.01)
        sib.record(SP2, [10], 0.01)
        assert sib.strategies() == [SP2, SP4]

    def test_persists_to_file(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "sib.sqlite")
            sib = ScalingInformationBase(path)
            sib.record(SP2, [512], 0.02)
            sib.close()
            reopened = ScalingInformationBase(path)
            assert reopened.sample_count(SP2) == 1
            reopened.close()


class TestFitting:
    def test_fit_requires_samples(self):
        sib = ScalingInformationBase()
        model = sib.fit()
        assert model.strategies == []

    def test_profile_strategies_fits_all(self):
        cost = RooflineCostModel(cluster=Cluster.homogeneous(8), model=LWM_7B_1M)
        sib = ScalingInformationBase()
        model = sib.profile_strategies(cost, [SP2, SP4], max_len=100_000)
        assert model.has_strategy(SP2)
        assert model.has_strategy(SP4)
        assert sib.sample_count() > 0

    def test_fitted_model_accurate_on_grid(self):
        """Figure 15's premise at the SIB level: <10% deviation."""
        cost = RooflineCostModel(cluster=Cluster.homogeneous(8), model=LWM_7B_1M)
        sib = ScalingInformationBase()
        model = sib.profile_strategies(cost, [SP4], max_len=200_000)
        for lens in ([1_234], [45_000], [150_000], [3_000] * 4):
            real = cost.prefill_time(lens, 4, 2)
            predicted = model.predict(SP4, lens)
            assert abs(predicted - real) / real < 0.10
