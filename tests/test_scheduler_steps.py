"""Unit tests for the four scheduling steps (§5.1-§5.4)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import SchedulerConfig
from repro.core.allocation import allocate_instances
from repro.core.batch import DecodeBatch, next_batch_id
from repro.core.dispatching import select_prefill_requests
from repro.core.scaling_plan import (
    assign_masters,
    pick_append_instance,
    plan_scale_down,
    plan_scale_up,
)
from repro.core.sib import ScalingInformationBase
from repro.costmodel.latency import RooflineCostModel
from repro.kvcache.unified import UnifiedKVPool
from repro.model.spec import LWM_7B_1M
from repro.parallel.groups import ParallelGroup
from repro.parallel.strategy import strategies_for_gpus
from tests.conftest import make_request

SLOTS = 10_000


@pytest.fixture(scope="module")
def predictor():
    cost = RooflineCostModel(cluster=Cluster.homogeneous(8), model=LWM_7B_1M)
    sib = ScalingInformationBase()
    return sib.profile_strategies(cost, strategies_for_gpus(8, 2), max_len=100_000)


@pytest.fixture(scope="module")
def cost_model():
    return RooflineCostModel(cluster=Cluster.homogeneous(8), model=LWM_7B_1M)


def make_pool(used: dict[int, int] | None = None) -> UnifiedKVPool:
    pool = UnifiedKVPool.create(num_instances=4, slots_per_instance=SLOTS)
    for instance, tokens in (used or {}).items():
        pool.place(9_000 + instance, {instance: tokens})
    return pool


def make_decode_batch(instances: tuple[int, ...], num_requests: int = 2) -> DecodeBatch:
    batch = DecodeBatch(batch_id=next_batch_id())
    batch.group = ParallelGroup(instance_ids=instances, tensor_parallel=2)
    for _ in range(num_requests):
        request = make_request(input_len=50, output_len=20)
        request.generated = 5
        request.prefill_end = 0.0
        batch.requests.append(request)
    return batch


class TestDispatching:
    def test_fcfs_order_preserved(self, predictor):
        pending = [make_request(input_len=100) for _ in range(3)]
        decision = select_prefill_requests(
            pending, [0, 1, 2, 3], {i: SLOTS for i in range(4)}, [],
            predictor, 2, SchedulerConfig(), 0.0, 0.0,
        )
        assert [r.request_id for r in decision.requests] == [
            r.request_id for r in pending
        ]

    def test_memory_gate_blocks_oversized(self, predictor):
        pending = [make_request(input_len=5 * SLOTS)]
        decision = select_prefill_requests(
            pending, [0], {0: SLOTS}, [], predictor, 2,
            SchedulerConfig(), 0.0, 0.0,
        )
        assert decision.is_empty

    def test_first_request_bypasses_tipping(self, predictor):
        pending = [make_request(input_len=50_000)]
        decision = select_prefill_requests(
            pending, [0, 1, 2, 3], {i: SLOTS * 10 for i in range(4)}, [],
            predictor, 2, SchedulerConfig(prefill_tipping_tokens=1_000), 0.0, 0.0,
        )
        assert len(decision.requests) == 1

    def test_tipping_limits_batch(self, predictor):
        pending = [make_request(input_len=4_000) for _ in range(20)]
        decision = select_prefill_requests(
            pending, [0], {0: SLOTS * 10}, [], predictor, 2,
            SchedulerConfig(prefill_tipping_tokens=8_192), 0.0, 0.0,
        )
        assert 1 <= len(decision.requests) < 20

    def test_preemptable_memory_extends_budget(self, predictor):
        """With no idle instances, decode instances' free slots still
        admit requests (allocation preempts later)."""
        batch = make_decode_batch((0, 1))
        pending = [make_request(input_len=1_000)]
        decision = select_prefill_requests(
            pending, [], {0: SLOTS, 1: SLOTS, 2: 0, 3: 0}, [batch],
            predictor, 2, SchedulerConfig(), 0.0, 0.0,
        )
        assert len(decision.requests) == 1

    def test_coopt_requires_gain(self, predictor):
        """With zero AvgLat_d the gain is zero, so no co-opting happens."""
        batch = make_decode_batch((2, 3))
        pending = [make_request(input_len=18_000), make_request(input_len=18_000),
                   make_request(input_len=18_000)]
        decision = select_prefill_requests(
            pending, [0, 1], {0: SLOTS, 1: SLOTS, 2: SLOTS, 3: SLOTS}, [batch],
            predictor, 2, SchedulerConfig(), avg_decode_latency=0.0, now=0.0,
        )
        assert batch not in decision.coopted_batches

    def test_coopt_fires_with_large_gain(self, predictor):
        """Phase 1 stops at the idle base group's tipping point; the
        Eq. 1/2 analysis then co-opts the decode group's compute, raising
        the budget enough for the rest of the queue."""
        batch = make_decode_batch((2, 3))
        pending = [make_request(input_len=3_000) for _ in range(4)]
        decision = select_prefill_requests(
            pending, [0], {0: 5_000, 1: 0, 2: 4_000, 3: 4_000}, [batch],
            predictor, 2,
            SchedulerConfig(prefill_tipping_tokens=8_192),
            avg_decode_latency=1e9, now=0.0,
        )
        assert batch in decision.coopted_batches
        assert len(decision.requests) == 4

    def test_empty_pending(self, predictor):
        decision = select_prefill_requests(
            [], [0], {0: SLOTS}, [], predictor, 2, SchedulerConfig(), 0.0, 0.0
        )
        assert decision.is_empty

    def test_successive_coopts_share_token_budget(self, predictor):
        """Regression: a successful co-opt must advance the committed
        token/future counters.  With stale counters the second co-optable
        batch is gated against undercounted commitments and the joint
        admission sails past the tipping point (``token_budget``)."""
        b1 = make_decode_batch((1,))
        b2 = make_decode_batch((2,))
        pending = [make_request(input_len=600, output_len=5) for _ in range(10)]
        tipping = 1_000
        decision = select_prefill_requests(
            pending, [0], {0: 100_000, 1: 100_000, 2: 100_000, 3: 0},
            [b1, b2], predictor, 2,
            SchedulerConfig(prefill_tipping_tokens=tipping),
            avg_decode_latency=1e9, now=0.0,
        )
        assert len(decision.coopted_batches) == 2
        # Joint compute budget: one share for the idle base instance plus
        # one per co-opted instance — the two co-opts may never jointly
        # admit past it.
        budget = tipping * (
            1 + sum(len(b.instance_ids) for b in decision.coopted_batches)
        )
        total = sum(r.current_len for r in decision.requests)
        assert total <= budget

    def test_coopt_respects_max_batch_size(self, predictor):
        """Phase 2 admissions count toward the same batch-size cap that
        phase 1 enforces."""
        batch = make_decode_batch((1,))
        pending = [make_request(input_len=100, output_len=5) for _ in range(10)]
        decision = select_prefill_requests(
            pending, [0], {0: 100_000, 1: 100_000, 2: 0, 3: 0}, [batch],
            predictor, 2,
            SchedulerConfig(max_batch_size=2, prefill_tipping_tokens=150),
            avg_decode_latency=1e9, now=0.0,
        )
        assert len(decision.requests) <= 2

    def test_coopt_memory_gate_stays_hard(self, predictor):
        """Co-opting contributes compute, not memory: phase 2 may never
        admit a request whose KV cannot fit the obtainable slots."""
        batch = make_decode_batch((2, 3))
        pending = [make_request(input_len=3_000) for _ in range(6)]
        decision = select_prefill_requests(
            pending, [0], {0: 5_000, 1: 0, 2: 4_000, 3: 4_000}, [batch],
            predictor, 2,
            SchedulerConfig(prefill_tipping_tokens=8_192),
            avg_decode_latency=1e9, now=0.0,
        )
        committed = sum(r.current_len + 1 for r in decision.requests)
        assert committed <= 13_000  # idle free + preemptable free


class TestAllocation:
    def test_no_requests_keeps_base(self, predictor, cost_model):
        pool = make_pool()
        decision = allocate_instances(
            [], [0], pool, [], predictor, cost_model.collectives, LWM_7B_1M, 2
        )
        assert decision.instances == [0]

    def test_preempts_for_memory(self, predictor, cost_model):
        """A request too big for idle instances takes a decode instance,
        migrating its KV to the other decode instance."""
        pool = make_pool(used={1: 100, 2: 200})
        batch = make_decode_batch((1, 2))
        request = make_request(input_len=int(1.5 * SLOTS))
        decision = allocate_instances(
            [request], [0], pool, [batch], predictor,
            cost_model.collectives, LWM_7B_1M, 2,
        )
        assert len(decision.instances) >= 2
        drained = set(decision.instances) - {0}
        for instance in drained:
            assert pool.pools[instance].used == 0  # KV migrated away

    def test_growth_drains_cheap_instance(self, predictor, cost_model):
        """Eq. 3/4: a long prefill pulls in a nearly-empty decode instance."""
        pool = make_pool(used={1: 10, 2: 5_000})
        batch = make_decode_batch((1, 2))
        request = make_request(input_len=9_000)
        decision = allocate_instances(
            [request], [0, 3], pool, [batch], predictor,
            cost_model.collectives, LWM_7B_1M, 2,
        )
        assert 1 in decision.instances  # the 10-token instance was drained
        assert pool.pools[1].used == 0
        assert (batch, 1) in decision.shrunk

    def test_never_drains_last_decode_instance(self, predictor, cost_model):
        pool = make_pool(used={2: 50})
        batch = make_decode_batch((2,))
        request = make_request(input_len=9_000)
        decision = allocate_instances(
            [request], [0, 1, 3], pool, [batch], predictor,
            cost_model.collectives, LWM_7B_1M, 2,
        )
        assert 2 not in decision.instances

    def test_migration_time_charged(self, predictor, cost_model):
        pool = make_pool(used={1: 5_000, 2: 100})
        batch = make_decode_batch((1, 2))
        request = make_request(input_len=9_500)
        decision = allocate_instances(
            [request], [0, 3], pool, [batch], predictor,
            cost_model.collectives, LWM_7B_1M, 2,
        )
        if decision.migrations:
            assert decision.migration_time > 0


class TestScaleDownPlanning:
    def test_minimum_instances_kept(self):
        pool = make_pool()
        requests = [make_request(input_len=100) for _ in range(3)]
        plan = plan_scale_down(
            requests, [0, 1, 2, 3], pool, set(), SchedulerConfig()
        )
        assert len(plan.kept_instances) == 1

    def test_large_batch_keeps_more(self):
        pool = make_pool()
        requests = [make_request(input_len=SLOTS - 100) for _ in range(3)]
        plan = plan_scale_down(
            requests, [0, 1, 2, 3], pool, set(), SchedulerConfig()
        )
        assert len(plan.kept_instances) >= 3

    def test_prefers_decode_hosting_instances(self):
        pool = make_pool()
        requests = [make_request(input_len=100)]
        plan = plan_scale_down(
            requests, [0, 1, 2, 3], pool, {2}, SchedulerConfig()
        )
        assert plan.kept_instances == (2,)

    def test_disabled_scale_down_keeps_group(self):
        pool = make_pool()
        requests = [make_request(input_len=100)]
        plan = plan_scale_down(
            requests, [0, 1], pool, set(),
            SchedulerConfig(enable_scale_down=False),
        )
        assert plan.kept_instances == (0, 1)

    def test_per_request_placement_covers_tokens(self):
        pool = make_pool()
        requests = [make_request(input_len=500), make_request(input_len=300)]
        plan = plan_scale_down(requests, [0, 1, 2, 3], pool, set(), SchedulerConfig())
        for request in requests:
            placed = sum(plan.per_request[request.request_id].values())
            assert placed == request.current_len + 1

    def test_oversized_request_raises(self):
        pool = make_pool()
        requests = [make_request(input_len=10 * SLOTS)]
        with pytest.raises(ValueError):
            plan_scale_down(requests, [0], pool, set(), SchedulerConfig())


class TestScaleUpPlanning:
    def test_memory_pressure_triggers(self):
        pool = make_pool(used={0: SLOTS - 10})
        batch = make_decode_batch((0,), num_requests=8)
        decision = plan_scale_up(batch, [1, 2], pool, SchedulerConfig())
        assert decision is not None
        assert decision.reason == "memory"

    def test_compute_pressure_triggers(self):
        pool = make_pool()
        batch = make_decode_batch((0,), num_requests=200)
        decision = plan_scale_up(
            batch, [1], pool, SchedulerConfig(decode_compute_bound_bs=128)
        )
        assert decision is not None
        assert decision.reason == "compute"

    def test_no_pressure_no_scale_up(self):
        pool = make_pool()
        batch = make_decode_batch((0,), num_requests=2)
        assert plan_scale_up(batch, [1], pool, SchedulerConfig()) is None

    def test_disabled_scale_up(self):
        pool = make_pool(used={0: SLOTS - 10})
        batch = make_decode_batch((0,), num_requests=8)
        config = SchedulerConfig(enable_scale_up=False)
        assert plan_scale_up(batch, [1], pool, config) is None

    def test_no_idle_instances(self):
        pool = make_pool(used={0: SLOTS - 10})
        batch = make_decode_batch((0,), num_requests=8)
        assert plan_scale_up(batch, [], pool, SchedulerConfig()) is None


class TestMasterAssignment:
    def test_single_master_when_disabled(self):
        pool = make_pool()
        config = SchedulerConfig(enable_multi_master=False)
        masters = assign_masters((0, 1, 2), pool, batch_size=50, config=config)
        assert len(masters) == 1

    def test_multi_master_uses_capacity(self):
        pool = make_pool()
        masters = assign_masters((0, 1, 2), pool, batch_size=50, config=SchedulerConfig())
        assert len(masters) == 3

    def test_full_instances_not_masters(self):
        pool = make_pool(used={1: SLOTS})
        masters = assign_masters((0, 1), pool, batch_size=50, config=SchedulerConfig())
        assert 1 not in masters

    def test_append_picks_most_free(self):
        pool = make_pool(used={0: 500})
        assert pick_append_instance((0, 1), pool) == 1

    def test_append_requires_masters(self):
        pool = make_pool()
        with pytest.raises(ValueError):
            pick_append_instance((), pool)
