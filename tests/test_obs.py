"""Observability layer: tracer, telemetry, exporters, explain, golden gate.

Four contracts pinned here:

* **Tracer semantics** — span merge/split rules, finalize, the audit
  log, and the legacy ``TraceRecorder`` shim.
* **Telemetry** — registry typing, sampling, histogram merge
  associativity (hypothesis), quantiles.
* **Exporters** — Perfetto trace.json schema validity and the
  JSONL/Perfetto round trip through :func:`repro.obs.load_export`,
  feeding the ``explain`` narration.
* **Golden gate** — running with the full observability stack armed
  changes *nothing* about the serving outcome (identical per-request
  finish times), and fleet telemetry samples ride the control ticks
  one-for-one.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_config
from repro.core.server import LoongServeServer
from repro.experiments.systems import make_fleet
from repro.obs import (
    DEFAULT_TELEMETRY_INTERVAL,
    Histogram,
    MetricsRegistry,
    Observability,
    SPAN_PHASES,
    Tracer,
    diff_telemetry,
    export_jsonl,
    export_perfetto,
    load_export,
    perfetto_trace,
    request_ids,
    request_story,
    validate_perfetto,
)
from repro.sim.trace import TraceRecord, TraceRecorder
from repro.workloads.datasets import SHAREGPT
from repro.workloads.trace_gen import clone_requests, make_trace

TRACE = make_trace(SHAREGPT, rate=12.0, num_requests=20, seed=11)


class TestTracer:
    def test_audit_captures_structure(self):
        tracer = Tracer()
        tracer.audit(1.5, "route", component="router", replica=2, request=7)
        (rec,) = tracer.records
        assert (rec.time, rec.kind, rec.component, rec.replica) == (
            1.5, "route", "router", 2,
        )
        assert rec.payload == {"request": 7}

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(enabled=False)
        tracer.audit(0.0, "route", request=1)
        tracer.record(0.0, "legacy")
        tracer.transition(1, "queued", 0.0)
        tracer.end_span(1, 1.0)
        tracer.finalize(2.0)
        assert len(tracer.records) == 0 and len(tracer.spans) == 0

    def test_same_phase_same_replica_merges(self):
        tracer = Tracer()
        tracer.transition(1, "decode", 0.0, replica=0, batch=2)
        tracer.transition(1, "decode", 1.0, replica=0, batch=5)
        tracer.end_span(1, 2.0)
        (span,) = tracer.spans
        assert (span.start, span.end) == (0.0, 2.0)
        assert span.attrs["batch"] == 5  # attrs updated in place

    def test_replica_change_splits_even_same_phase(self):
        tracer = Tracer()
        tracer.transition(1, "queued", 0.0, replica=0)
        tracer.transition(1, "queued", 1.0, replica=2)  # stolen
        tracer.end_span(1, 3.0)
        spans = tracer.spans_for(1)
        assert [(s.phase, s.replica) for s in spans] == [
            ("queued", 0), ("queued", 2),
        ]
        assert [(s.start, s.end) for s in spans] == [(0.0, 1.0), (1.0, 3.0)]

    def test_phase_change_closes_previous(self):
        tracer = Tracer()
        tracer.transition(9, "queued", 0.0)
        tracer.transition(9, "prefill", 0.5)
        tracer.transition(9, "decode", 0.8)
        tracer.end_span(9, 2.0)
        assert [s.phase for s in tracer.spans_for(9)] == [
            "queued", "prefill", "decode",
        ]
        # Contiguous: each span starts where the previous ended.
        spans = tracer.spans_for(9)
        for prev, nxt in zip(spans, spans[1:]):
            assert prev.end == nxt.start

    def test_finalize_tags_open_spans(self):
        tracer = Tracer()
        tracer.transition(1, "decode", 1.0)
        tracer.transition(2, "queued", 5.0)
        tracer.finalize(3.0)  # horizon before request 2's start
        by_id = {s.request_id: s for s in tracer.spans}
        assert by_id[1].attrs["open"] and by_id[1].end == 3.0
        assert by_id[2].end == 5.0  # never ends before it starts
        assert not tracer._open
        tracer.finalize(10.0)  # idempotent
        assert len(tracer.spans) == 2

    def test_finalize_without_horizon_uses_latest_time(self):
        tracer = Tracer()
        tracer.transition(1, "decode", 1.0)
        tracer.audit(7.5, "finish")
        tracer.finalize()
        assert tracer.spans[0].end == 7.5

    def test_query_api(self):
        tracer = Tracer()
        tracer.audit(0.0, "a")
        tracer.audit(1.0, "b")
        tracer.audit(2.0, "a")
        assert len(tracer.of_kind("a")) == 2
        assert tracer.kinds() == {"a", "b"}
        assert [r.time for r in tracer.between(0.5, 2.0)] == [1.0]
        assert len(tracer) == 3 and len(list(tracer)) == 3
        assert "a" in tracer.render()


class TestTraceRecorderShim:
    def test_shim_is_a_tracer(self):
        rec = TraceRecorder(enabled=True)
        assert isinstance(rec, Tracer)
        rec.record(1.0, "scale_up", size=3)
        assert rec.of_kind("scale_up")[0].payload == {"size": 3}
        assert rec.records[0].component == "legacy"

    def test_trace_record_alias(self):
        rec = TraceRecord(time=0.0, kind="x", payload={"a": 1})
        assert "x" in str(rec) and "a=1" in str(rec)


class TestMetricsRegistry:
    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_sample_appends_every_series(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        g = reg.gauge("g")
        c.inc(2)
        g.set(5.0)
        reg.sample(1.0)
        c.inc()
        reg.sample(2.0)
        assert reg.series["c"] == [(1.0, 2.0), (2.0, 3.0)]
        assert reg.series["g"] == [(1.0, 5.0), (2.0, 5.0)]
        assert reg.sample_times == [1.0, 2.0]

    def test_late_registration_has_short_series(self):
        reg = MetricsRegistry()
        reg.gauge("early").set(1.0)
        reg.sample(0.0)
        reg.gauge("late").set(2.0)
        reg.sample(1.0)
        assert len(reg.series["early"]) == 2
        assert reg.series["late"] == [(1.0, 2.0)]

    def test_render_timeline_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.gauge("queue").set(3.0)
        reg.sample(0.5)
        out = reg.render_timeline()
        assert "queue" in out and "1 samples" in out

    def test_histogram_observe_and_quantile(self):
        h = Histogram("lat", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0, 10.0):
            h.observe(v)
        assert h.count == 5
        assert h.counts == [1, 2, 1, 1]
        assert h.value == pytest.approx(sum((0.5, 1.5, 1.6, 3.0, 10.0)) / 5)
        assert h.quantile(0.0) == 1.0  # first non-empty bucket's bound
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == math.inf
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError):
            Histogram("a", bounds=(1.0,)).merge(Histogram("b", bounds=(2.0,)))

    def test_histogram_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            Histogram("a", bounds=(1.0, 2.0), counts=[0, 0])

    @given(
        samples=st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False),
                max_size=20,
            ),
            min_size=3, max_size=3,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_is_associative_and_commutative(self, samples):
        """(a+b)+c == a+(b+c) and a+b == b+a — per-replica histograms
        roll up into fleet totals in any order."""
        bounds = (0.5, 5.0, 50.0)
        hists = []
        for i, values in enumerate(samples):
            h = Histogram(f"h{i}", bounds=bounds)
            for v in values:
                h.observe(v)
            hists.append(h)
        a, b, c = hists
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = b.merge(a).merge(c)
        assert left.counts == right.counts == swapped.counts
        assert left.total == pytest.approx(right.total)
        assert left.count == a.count + b.count + c.count


class TestObservabilityGolden:
    """Obs on vs off: identical serving outcome, nonzero trace."""

    def _signature(self, result):
        return sorted(
            (r.request_id, round(r.finish_time, 12), r.generated)
            for r in result.finished_requests
        )

    def test_server_run_unchanged_with_obs_armed(self):
        baseline = LoongServeServer(default_config()).run(clone_requests(TRACE))
        server = LoongServeServer(default_config())
        obs = Observability()
        server.observe(obs)
        observed = server.run(clone_requests(TRACE))
        assert self._signature(observed) == self._signature(baseline)
        assert observed.makespan == baseline.makespan
        assert len(obs.tracer.spans) > 0
        assert len(obs.tracer.records) > 0
        assert len(obs.metrics.sample_times) > 0
        assert observed.obs is obs and baseline.obs is None

    def test_fleet_run_unchanged_with_obs_armed(self):
        def run(obs):
            fleet = make_fleet(
                "loongserve", replicas=2, router="least-kv",
                requests=TRACE, num_gpus=4, steal=True,
            )
            if obs is not None:
                fleet.observe(obs)
            return fleet.run(clone_requests(TRACE))

        baseline = run(None)
        obs = Observability()
        observed = run(obs)
        assert self._signature(observed) == self._signature(baseline)
        assert {s.replica for s in obs.tracer.spans if s.phase == "prefill"} \
            == {0, 1}
        assert "route" in obs.tracer.kinds()

    def test_fleet_samples_ride_control_ticks(self):
        fleet = make_fleet(
            "loongserve", replicas=2, router="round-robin",
            requests=TRACE, num_gpus=4, autoscale=True,
        )
        obs = Observability()
        fleet.observe(obs)
        result = fleet.run(clone_requests(TRACE))
        assert result.elastic is not None
        assert len(obs.metrics.sample_times) == result.elastic.control_ticks

    def test_standalone_sampler_interval(self):
        server = LoongServeServer(default_config())
        obs = Observability(telemetry_interval=0.25)
        server.observe(obs)
        server.run(clone_requests(TRACE))
        times = obs.metrics.sample_times
        assert times, "standalone sampler never fired"
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(d == pytest.approx(0.25) for d in deltas)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            Observability(telemetry_interval=0.0)
        assert DEFAULT_TELEMETRY_INTERVAL > 0


def _observed_server_run():
    server = LoongServeServer(default_config())
    obs = Observability()
    server.observe(obs)
    server.run(clone_requests(TRACE))
    return obs


class TestExporters:
    def test_perfetto_doc_is_schema_valid(self):
        obs = _observed_server_run()
        doc = perfetto_trace(obs)
        assert validate_perfetto(doc) == []
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "C"} <= phases
        json.dumps(doc)  # fully serialisable

    def test_validate_flags_malformed_docs(self):
        assert validate_perfetto({"traceEvents": "nope"})
        assert validate_perfetto(
            {"traceEvents": [{"ph": "Z", "name": "x", "pid": 0, "ts": 0}]}
        )
        assert validate_perfetto(
            {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "ts": -5.0}]}
        )

    def test_round_trip_both_formats(self, tmp_path):
        obs = _observed_server_run()
        p_json = tmp_path / "trace.json"
        p_jsonl = tmp_path / "trace.jsonl"
        export_perfetto(obs, p_json)
        lines = export_jsonl(obs, p_jsonl)
        histograms = [
            name for name in obs.metrics.names()
            if isinstance(obs.metrics.get(name), Histogram)
        ]
        assert lines == (
            len(obs.tracer.spans) + len(obs.tracer.records)
            + sum(len(s) for s in obs.metrics.series.values())
            + len(histograms)
        )
        a = load_export(p_json)
        b = load_export(p_jsonl)

        def key(s):
            return (s["request"], s["start"], s["end"], s["phase"])

        spans_a = sorted(a["spans"], key=key)
        spans_b = sorted(b["spans"], key=key)
        assert len(spans_a) == len(spans_b) == len(obs.tracer.spans)
        for sa, sb in zip(spans_a, spans_b):
            assert (sa["request"], sa["phase"], sa["replica"]) == (
                sb["request"], sb["phase"], sb["replica"],
            )
            # Perfetto timestamps are quantised to nanoseconds on export.
            assert sa["start"] == pytest.approx(sb["start"], abs=1e-9)
            assert sa["end"] == pytest.approx(sb["end"], abs=1e-8)
        assert len(a["audits"]) == len(b["audits"]) == len(obs.tracer.records)
        assert set(a["samples"]) == set(b["samples"]) == set(obs.metrics.series)
        assert set(a["histograms"]) == set(b["histograms"]) == set(histograms)
        for name in histograms:
            assert a["histograms"][name] == b["histograms"][name]

    def test_exported_phases_stay_in_taxonomy(self, tmp_path):
        obs = _observed_server_run()
        path = tmp_path / "t.jsonl"
        export_jsonl(obs, path)
        data = load_export(path)
        assert {s["phase"] for s in data["spans"]} <= set(SPAN_PHASES)


class TestExplain:
    def test_story_narrates_one_request(self, tmp_path):
        obs = _observed_server_run()
        path = tmp_path / "t.json"
        export_perfetto(obs, path)
        data = load_export(path)
        ids = request_ids(data)
        assert ids == sorted(r.request_id for r in TRACE)
        story = request_story(data, ids[0])
        assert f"request {ids[0]}:" in story
        assert "queued" in story and "decode" in story
        assert "arrival" in story and "finish" in story

    def test_story_handles_unknown_request(self, tmp_path):
        obs = _observed_server_run()
        path = tmp_path / "t.jsonl"
        export_jsonl(obs, path)
        story = request_story(load_export(path), 10_000_000)
        lo = min(r.request_id for r in TRACE)
        hi = max(r.request_id for r in TRACE)
        assert "not found" in story and f"{lo}..{hi}" in story

    def test_diff_telemetry_reports_deltas(self):
        a = {"samples": {"m": [(0.0, 1.0), (1.0, 3.0)]}}
        b = {"samples": {"m": [(0.0, 2.0), (1.0, 6.0)]}}
        out = diff_telemetry(a, b, label_a="left", label_b="right")
        assert "m" in out and "+100.0%" in out
        assert "no telemetry" in diff_telemetry(
            {"samples": {}}, {"samples": {}}
        )


class TestFluidSpans:
    def test_decode_spans_carry_fluid_window_attrs(self):
        """Hybrid-mode decode spans sub-divide into the fluid windows
        that advanced them: (window_start, window_end, tokens_advanced)
        triples, appended live as each window closes."""
        from repro.config import SchedulerConfig
        from repro.types import Request

        trace = [
            Request(request_id=i, input_len=512, output_len=300,
                    arrival_time=(i // 24) * 8.0)
            for i in range(120)
        ]
        config = default_config(scheduler=SchedulerConfig(sim_mode="hybrid"))
        server = LoongServeServer(config)
        obs = Observability()
        server.observe(obs)
        server.run(clone_requests(trace))
        assert server._fluid.windows > 0
        windowed = [
            s for s in obs.tracer.spans
            if s.phase == "decode" and "fluid_windows" in s.attrs
        ]
        assert windowed, "no decode span recorded its fluid windows"
        output_len = {r.request_id: r.output_len for r in trace}
        for span in windowed:
            windows = span.attrs["fluid_windows"]
            assert windows
            for start, end, advanced in windows:
                assert start < end
                assert advanced >= 1
            # Windows never overshoot the request's declared decode.
            assert sum(adv for _, _, adv in windows) <= (
                output_len[span.request_id]
            )
            # Consecutive windows of one span move forward in time.
            starts = [start for start, _, _ in windows]
            assert starts == sorted(starts)
