"""Shared fixtures: a small cluster, cost model, and workload helpers.

Also registers the derandomized hypothesis profile CI runs select via
``CI=1``: a fixed seed and no deadline, so property tests are exactly
reproducible across CI runs (no flaky shrink timeouts, no
run-to-run example drift) while local runs keep exploring fresh
examples.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.cluster.cluster import Cluster
from repro.config import SystemConfig, default_config
from repro.costmodel.latency import RooflineCostModel
from repro.model.spec import LWM_7B_1M
from repro.types import Request, next_request_id

settings.register_profile("ci", derandomize=True, deadline=None)
if os.environ.get("CI"):
    settings.load_profile("ci")


@pytest.fixture(scope="session")
def cluster8() -> Cluster:
    return Cluster.homogeneous(num_gpus=8)


@pytest.fixture(scope="session")
def cost_model(cluster8: Cluster) -> RooflineCostModel:
    return RooflineCostModel(cluster=cluster8, model=LWM_7B_1M)


@pytest.fixture(scope="session")
def config8() -> SystemConfig:
    return default_config(num_gpus=8, tensor_parallel=2)


def make_request(
    input_len: int = 100,
    output_len: int = 10,
    arrival: float = 0.0,
    max_tokens: int | None = None,
) -> Request:
    return Request(
        request_id=next_request_id(),
        input_len=input_len,
        output_len=output_len,
        arrival_time=arrival,
        max_tokens=max_tokens,
    )


class StubReplica:
    """Minimal router-facing replica handle for unit-testing fleet
    routing policies with fully controllable probe state."""

    def __init__(self, replica_id, outstanding=0, tokens=0, free=0, match=0):
        self.replica_id = replica_id
        self._outstanding = outstanding
        self._tokens = tokens
        self._free = free
        self._match = match

    def outstanding_requests(self):
        return self._outstanding

    def outstanding_tokens(self):
        return self._tokens

    def kv_free(self):
        return self._free

    def prefix_match_len(self, request):
        return self._match

    def state(self):
        return (self._outstanding, self._tokens, self._free, self._match)
