"""Unit tests for the radix prefix-KV cache (repro.sessions.prefix_cache)."""

import pytest

from repro.kvcache.unified import UnifiedKVPool
from repro.sessions.prefix_cache import PrefixKVCache
from repro.types import Request


def make_pool(num_instances=2, slots=1_000):
    return UnifiedKVPool.create(num_instances=num_instances, slots_per_instance=slots)


def finished_request(request_id, tokens, output_len=5, pool=None, cache=None, now=0.0):
    """Simulate a finished request donating its KV: ``tokens`` is the full
    sequence (prompt + output); the pool holds all but the last token."""
    prompt = tokens[:-output_len]
    request = Request(
        request_id=request_id,
        input_len=len(prompt),
        output_len=output_len,
        token_ids=tuple(prompt),
    )
    request.generated = output_len
    pool.place(request_id, {0: len(tokens) - 1})
    cache.adopt_finished(request, tuple(tokens), now=now)
    return request


class TestInsertAndMatch:
    def test_empty_cache_matches_nothing(self):
        cache = PrefixKVCache(make_pool())
        assert cache.peek_match((1, 2, 3)) == 0
        assert cache.peek_match(None) == 0
        assert cache.resident_tokens == 0

    def test_adopt_then_match(self):
        pool = make_pool()
        cache = PrefixKVCache(pool)
        finished_request(1, list(range(20)), pool=pool, cache=cache)
        # All 19 resident tokens (the final output token's KV never
        # existed) are now cached, owned by the tree, not the request.
        assert cache.resident_tokens == 19
        assert pool.tokens_of(1) == 0
        assert pool.total_used == 19
        assert cache.peek_match(tuple(range(20))) == 19
        assert cache.peek_match(tuple(range(10))) == 10
        assert cache.peek_match((99, 98)) == 0

    def test_chained_turns_extend_the_tree(self):
        pool = make_pool()
        cache = PrefixKVCache(pool)
        turn0 = list(range(20))
        finished_request(1, turn0, pool=pool, cache=cache, now=1.0)
        # Turn 1's prompt extends turn 0's full sequence.
        turn1 = turn0 + [100, 101, 102, 103, 104] + [200, 201, 202, 203, 204]
        request = Request(
            request_id=2, input_len=25, output_len=5,
            token_ids=tuple(turn1[:25]),
        )
        matched = cache.match_and_lock(request, now=2.0)
        assert matched == 19  # everything resident from turn 0
        request.cached_prefix_len = matched
        # Prefill allocates the suffix + first token; decode appends all
        # but the final output token (whose KV is never materialised).
        pool.place(2, {0: request.kv_demand})
        request.generated = 5
        pool.extend(2, 0, 3)
        cache.adopt_finished(request, tuple(turn1), now=3.0)
        assert cache.resident_tokens == 29  # 19 + uncached 10
        assert cache.peek_match(tuple(turn1)) == 29
        assert pool.total_used == 29

    def test_diverging_sessions_split_extents(self):
        pool = make_pool()
        cache = PrefixKVCache(pool)
        shared = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        finished_request(1, shared + [11, 12, 13, 14, 15], pool=pool, cache=cache)
        # Second sequence shares the first 8 tokens then diverges.
        other = shared[:8] + [77, 78, 79, 80, 81, 82]
        finished_request(2, other, pool=pool, cache=cache)
        assert cache.peek_match(tuple(shared + [11, 12])) == 12
        # The helper hands the cache 13 slots; beyond the 8 shared tokens
        # only 6 sequence tokens remain uncovered, so 6 are adopted and
        # the surplus duplicate slots are freed.
        assert cache.peek_match(tuple(other)) == len(other)
        assert cache.resident_tokens == 20
        assert pool.total_used == 20


class TestLocking:
    def test_locked_extents_survive_eviction(self):
        pool = make_pool()
        cache = PrefixKVCache(pool)
        finished_request(1, list(range(100, 130)), pool=pool, cache=cache, now=1.0)
        request = Request(
            request_id=2, input_len=29, output_len=2,
            token_ids=tuple(range(100, 129)),
        )
        matched = cache.match_and_lock(request, now=2.0)
        assert matched == 28  # capped at input_len - 1
        # Locking split the extent at the match boundary: only the
        # unpinned 1-token remainder may be evicted.
        assert cache.evict(10_000) == 1
        assert cache.resident_tokens == 28
        cache.release(2)
        assert cache.evict(10_000) == 28
        assert cache.resident_tokens == 0

    def test_match_caps_at_input_len_minus_one(self):
        pool = make_pool()
        cache = PrefixKVCache(pool)
        tokens = list(range(40))
        finished_request(1, tokens, pool=pool, cache=cache)
        # A request whose whole prompt is resident still prefills >= 1 token.
        request = Request(
            request_id=2, input_len=10, output_len=2, token_ids=tuple(tokens[:10])
        )
        assert cache.match_and_lock(request, now=1.0) == 9

    def test_release_is_idempotent(self):
        cache = PrefixKVCache(make_pool())
        cache.release(123)  # no lock held: no-op
        cache.release(123)


class TestEviction:
    def test_lru_leaf_goes_first(self):
        pool = make_pool()
        cache = PrefixKVCache(pool)
        finished_request(1, [1, 2, 3, 4, 5, 6], pool=pool, cache=cache, now=1.0)
        finished_request(2, [9, 8, 7, 6, 5, 4], pool=pool, cache=cache, now=5.0)
        freed = cache.evict(1)
        assert freed == 5  # whole extent of the older sequence
        assert cache.peek_match((1, 2, 3)) == 0
        assert cache.peek_match((9, 8, 7)) == 3
        assert cache.stats.evicted_tokens == 5

    def test_eviction_frees_pool_slots(self):
        pool = make_pool()
        cache = PrefixKVCache(pool)
        finished_request(1, list(range(50)), pool=pool, cache=cache)
        before = pool.total_free
        cache.evict(10)
        assert pool.total_free == before + 49

    def test_instance_filtered_eviction(self):
        pool = make_pool(num_instances=2)
        cache = PrefixKVCache(pool)
        request = Request(
            request_id=1, input_len=10, output_len=5, token_ids=tuple(range(10))
        )
        request.generated = 5
        pool.place(1, {1: 14})  # resident entirely on instance 1
        cache.adopt_finished(request, tuple(range(15)), now=0.0)
        assert cache.evict(5, instance_ids=[0]) == 0  # nothing lives there
        assert cache.evict(5, instance_ids=[1]) == 14

    def test_parent_becomes_evictable_after_leaf(self):
        pool = make_pool()
        cache = PrefixKVCache(pool)
        base = [1, 2, 3, 4, 5, 6, 7, 8]
        finished_request(1, base + [11, 12, 13], pool=pool, cache=cache, now=1.0)
        finished_request(2, base[:6] + [21, 22, 23, 24], pool=pool, cache=cache, now=2.0)
        # Tree: shared prefix node + two leaves; full eviction drains all.
        assert cache.evict(10_000) == cache.stats.evicted_tokens
        assert cache.resident_tokens == 0
        assert pool.total_used == 0


class TestCapacityBudget:
    def test_unbounded_by_default(self):
        pool = make_pool()
        cache = PrefixKVCache(pool)
        assert cache.max_cached_tokens is None
        for rid in range(5):
            tokens = [rid * 1000 + t for t in range(40)]
            finished_request(rid, tokens, pool=pool, cache=cache, now=float(rid))
        assert cache.resident_tokens == 5 * 39

    def test_adopt_evicts_lru_back_under_budget(self):
        pool = make_pool()
        cache = PrefixKVCache(pool, max_cached_tokens=100)
        for rid in range(5):
            tokens = [rid * 1000 + t for t in range(40)]  # 39 resident each
            finished_request(rid, tokens, pool=pool, cache=cache, now=float(rid))
        assert cache.resident_tokens <= 100
        # Newest extents survive; the oldest were reclaimed.
        assert cache.peek_match(tuple(4000 + t for t in range(39))) == 39
        assert cache.peek_match(tuple(range(39))) == 0
        assert cache.stats.evicted_tokens > 0

    def test_budget_caps_pool_usage_for_live_requests(self):
        # The whole point: cached history cannot starve live KV.
        pool = make_pool(num_instances=1, slots=200)
        cache = PrefixKVCache(pool, max_cached_tokens=50)
        for rid in range(4):
            tokens = [rid * 1000 + t for t in range(60)]
            finished_request(rid, tokens, pool=pool, cache=cache, now=float(rid))
        assert cache.resident_tokens <= 50
        assert pool.total_free >= 150

    def test_import_respects_budget(self):
        pool = make_pool()
        cache = PrefixKVCache(pool, max_cached_tokens=30)
        assert cache.import_prefix(tuple(range(25)), now=1.0) == 25
        cache.import_prefix(tuple(1000 + t for t in range(25)), now=2.0)
        assert cache.resident_tokens <= 30
        # The fresh import displaced the older extent.
        assert cache.peek_match(tuple(1000 + t for t in range(25))) == 25

    def test_pinned_extent_survives_budget_eviction(self):
        pool = make_pool()
        cache = PrefixKVCache(pool, max_cached_tokens=50)
        finished_request(1, list(range(40)), pool=pool, cache=cache, now=1.0)
        pinner = Request(
            request_id=2, input_len=39, output_len=5,
            token_ids=tuple(range(39)),
        )
        assert cache.match_and_lock(pinner, now=2.0) == 38
        # Overflowing the budget must not touch the pinned extent even
        # though it is the LRU-oldest — the newcomer is reclaimed instead.
        finished_request(3, [900 + t for t in range(21)], pool=pool,
                         cache=cache, now=3.0)
        assert cache.resident_tokens <= 50
        assert cache.peek_match(tuple(range(39))) >= 38
        cache.release(2)


class TestStats:
    def test_note_prefill_accounting(self):
        cache = PrefixKVCache(make_pool())
        hit = Request(request_id=1, input_len=100, output_len=4)
        hit.cached_prefix_len = 60
        miss = Request(request_id=2, input_len=50, output_len=4)
        cache.note_prefill(hit)
        cache.note_prefill(miss)
        stats = cache.stats
        assert (stats.lookups, stats.hits, stats.misses) == (2, 1, 1)
        assert stats.hit_tokens == 60
        assert stats.miss_tokens == (100 - 60) + 50
        assert stats.hit_rate == pytest.approx(60 / 150)
        assert stats.saved_prefill_tokens == 60

    def test_as_dict_is_mergeable(self):
        cache = PrefixKVCache(make_pool())
        d = cache.stats.as_dict()
        assert set(d) == {
            "lookups", "hits", "misses", "hit_tokens", "miss_tokens",
            "inserted_tokens", "evicted_tokens",
            "imported_tokens", "exported_tokens",
        }
        assert all(v == 0 for v in d.values())
