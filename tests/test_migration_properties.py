"""Property tests for KV migration planning (``repro.kvcache.migration``).

Hypothesis drives randomized pool layouts through
``plan_eviction_migration`` and checks the plan invariants the
allocation step and the fleet control plane rely on: token
conservation, no self-moves, and ``apply()`` leaving per-instance
occupancy exactly consistent with the plan.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.kvcache.migration import (
    MigrationPlan,
    MigrationStep,
    PrefixHandoff,
    plan_eviction_migration,
)
from repro.kvcache.unified import UnifiedKVPool


def build_pool(num_instances: int, capacity: int, placements) -> UnifiedKVPool:
    pool = UnifiedKVPool.create(
        num_instances=num_instances, slots_per_instance=capacity
    )
    for request_id, placement in enumerate(placements):
        trimmed = {}
        for instance_id, tokens in placement.items():
            take = min(tokens, pool.pools[instance_id].free)
            if take > 0:
                trimmed[instance_id] = take
        if trimmed:
            pool.place(request_id, trimmed)
    return pool


# Random pool layouts: 2-5 instances, a handful of requests whose KV is
# scattered across a random subset of instances.
pool_layouts = st.integers(min_value=2, max_value=5).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.integers(min_value=50, max_value=400),  # capacity per instance
        st.lists(  # placements: request -> {instance: tokens}
            st.dictionaries(
                keys=st.integers(min_value=0, max_value=n - 1),
                values=st.integers(min_value=1, max_value=120),
                min_size=1,
                max_size=n,
            ),
            min_size=0,
            max_size=6,
        ),
        st.integers(min_value=0, max_value=n - 1),  # instance to vacate
    )
)


class TestEvictionMigrationProperties:
    @given(pool_layouts)
    def test_plan_conserves_tokens_and_never_self_moves(self, layout):
        num_instances, capacity, placements, vacate = layout
        pool = build_pool(num_instances, capacity, placements)
        targets = [i for i in range(num_instances) if i != vacate]
        to_move = sum(pool.pools[vacate].snapshot().values())

        plan = plan_eviction_migration(pool, vacate, targets)
        if plan is None:  # targets could not absorb the tokens
            assert sum(pool.pools[t].free for t in targets) < to_move
            return
        # Conservation: the plan moves exactly the vacated occupancy.
        assert plan.total_tokens == to_move
        for step in plan.steps:
            assert step.src == vacate
            assert step.src != step.dst
            assert step.num_tokens > 0
            assert step.dst in targets

    @given(pool_layouts)
    def test_apply_leaves_occupancy_consistent_with_plan(self, layout):
        num_instances, capacity, placements, vacate = layout
        pool = build_pool(num_instances, capacity, placements)
        targets = [i for i in range(num_instances) if i != vacate]
        before_used = {i: pool.pools[i].used for i in range(num_instances)}
        before_total = pool.total_used
        before_tokens = {
            rid: pool.tokens_of(rid) for rid in pool.resident_requests()
        }

        plan = plan_eviction_migration(pool, vacate, targets)
        if plan is None:
            return
        plan.apply(pool)

        # The vacated instance is empty; global occupancy is unchanged.
        assert pool.pools[vacate].used == 0
        assert pool.total_used == before_total
        # Per-instance deltas match the plan's step sums exactly.
        for i in range(num_instances):
            inbound = sum(s.num_tokens for s in plan.steps if s.dst == i)
            outbound = sum(s.num_tokens for s in plan.steps if s.src == i)
            assert pool.pools[i].used == before_used[i] + inbound - outbound
        # No request gained or lost tokens — they only changed homes.
        for rid, tokens in before_tokens.items():
            assert pool.tokens_of(rid) == tokens

    @given(pool_layouts)
    def test_empty_source_yields_empty_plan(self, layout):
        num_instances, capacity, _, vacate = layout
        pool = build_pool(num_instances, capacity, [])
        plan = plan_eviction_migration(
            pool, vacate, [i for i in range(num_instances) if i != vacate]
        )
        assert plan is not None and plan.is_empty()


class TestMigrationPlanBasics:
    def test_cost_serialises_per_source(self, cluster8):
        from repro.costmodel.comm import CollectiveModel
        from repro.model.spec import LWM_7B_1M

        collectives = CollectiveModel(cluster=cluster8)
        plan = MigrationPlan(
            steps=[
                MigrationStep(request_id=1, src=0, dst=1, num_tokens=500),
                MigrationStep(request_id=2, src=0, dst=2, num_tokens=500),
                MigrationStep(request_id=3, src=1, dst=2, num_tokens=100),
            ]
        )
        single = MigrationPlan(steps=plan.steps[:1])
        assert plan.cost(collectives, LWM_7B_1M, 2) > single.cost(
            collectives, LWM_7B_1M, 2
        )
        assert MigrationPlan().cost(collectives, LWM_7B_1M, 2) == 0.0

    def test_cost_serialises_many_to_one_fan_in(self, cluster8):
        from repro.costmodel.comm import CollectiveModel
        from repro.model.spec import LWM_7B_1M

        collectives = CollectiveModel(cluster=cluster8)
        fan_in = MigrationPlan(
            steps=[
                MigrationStep(request_id=i, src=i, dst=3, num_tokens=500)
                for i in range(3)
            ]
        )
        singles = [
            MigrationPlan(steps=[step]).cost(collectives, LWM_7B_1M, 2)
            for step in fan_in.steps
        ]
        # Three sources shipping into one destination serialise on the
        # receiver's NIC: the plan costs the sum of its steps, not the
        # max (which is what distinct-pair overlap would give).
        cost = fan_in.cost(collectives, LWM_7B_1M, 2)
        assert cost == pytest.approx(sum(singles))
        assert cost > max(singles)

    def test_prefix_handoff_cost_scales_with_volume(self, cluster8):
        from repro.costmodel.comm import CollectiveModel
        from repro.model.spec import LWM_7B_1M

        collectives = CollectiveModel(cluster=cluster8)
        small = PrefixHandoff(
            request_id=1, src_replica=0, dst_replica=1, num_tokens=100
        )
        large = PrefixHandoff(
            request_id=1, src_replica=0, dst_replica=1, num_tokens=10_000
        )
        assert 0.0 < small.cost(collectives, LWM_7B_1M, 2) < large.cost(
            collectives, LWM_7B_1M, 2
        )

    def test_prefix_handoff_zero_tokens_is_free(self, cluster8):
        from repro.costmodel.comm import CollectiveModel
        from repro.model.spec import LWM_7B_1M

        collectives = CollectiveModel(cluster=cluster8)
        handoff = PrefixHandoff(
            request_id=1, src_replica=0, dst_replica=1, num_tokens=0
        )
        assert handoff.cost(collectives, LWM_7B_1M, 2) == 0.0


@pytest.mark.parametrize("profile_env", ["ci"])
def test_ci_profile_is_registered(profile_env):
    """The derandomized profile CI selects via ``CI=1`` must exist."""
    from hypothesis import settings

    profile = settings.get_profile(profile_env)
    assert profile.derandomize is True
    assert profile.deadline is None
