"""Unit tests for the GlobalManager's composed scheduling pass."""

import pytest

from repro.config import SchedulerConfig, default_config
from repro.core.batch import DecodeBatch, next_batch_id
from repro.core.elastic_instance import ElasticInstance, InstanceRole
from repro.core.global_manager import GlobalManager
from repro.costmodel.latency import RooflineCostModel
from repro.kvcache.unified import UnifiedKVPool
from repro.parallel.groups import ParallelGroup
from tests.conftest import make_request


@pytest.fixture(scope="module")
def manager_env():
    config = default_config()
    cost = RooflineCostModel(cluster=config.cluster, model=config.model)
    return config, GlobalManager(config, cost)


def fresh_state(config):
    pool = UnifiedKVPool.create(config.num_instances, config.kv_slots_per_instance)
    instances = {
        i: ElasticInstance(instance_id=i, pool=pool.pools[i])
        for i in range(config.num_instances)
    }
    return pool, instances


def decode_batch_on(pool, instances, instance_ids, num_requests=3, tokens_each=2_000):
    batch = DecodeBatch(batch_id=next_batch_id())
    batch.group = ParallelGroup(instance_ids=tuple(instance_ids), tensor_parallel=2)
    for _ in range(num_requests):
        request = make_request(input_len=tokens_each, output_len=100)
        request.generated = 10
        request.prefill_end = 0.0
        batch.requests.append(request)
        share = request.current_len // len(instance_ids)
        placement = {i: share for i in instance_ids}
        placement[instance_ids[0]] += request.current_len - share * len(instance_ids)
        pool.place(request.request_id, placement)
    for i in instance_ids:
        instances[i].assign(InstanceRole.DECODE, batch.batch_id)
    return batch


class TestBootstrap:
    def test_predictor_covers_all_sp_degrees(self, manager_env):
        config, manager = manager_env
        degrees = {s.sequence_parallel for s in manager.predictor.strategies}
        assert degrees == {1, 2, 3, 4}

    def test_sib_populated(self, manager_env):
        _, manager = manager_env
        assert manager.sib.sample_count() > 0


class TestSchedulePass:
    def test_empty_state_empty_plan(self, manager_env):
        config, manager = manager_env
        pool, instances = fresh_state(config)
        plan = manager.schedule(0.0, [], instances, pool, [], 0.0)
        assert plan.is_empty

    def test_single_request_dispatched_and_placed(self, manager_env):
        config, manager = manager_env
        pool, instances = fresh_state(config)
        request = make_request(input_len=50_000)
        plan = manager.schedule(0.0, [request], instances, pool, [], 0.0)
        assert len(plan.prefills) == 1
        planned = plan.prefills[0]
        assert planned.task.requests == [request]
        placement = planned.scale_down.per_request[request.request_id]
        assert sum(placement.values()) == request.current_len + 1
        assert set(placement) <= set(planned.task.group.instance_ids)

    def test_long_request_gets_high_dop(self, manager_env):
        config, manager = manager_env
        pool, instances = fresh_state(config)
        request = make_request(input_len=300_000)
        plan = manager.schedule(0.0, [request], instances, pool, [], 0.0)
        assert plan.prefills[0].task.dop == config.num_instances

    def test_short_request_scales_down_to_one_instance(self, manager_env):
        """The prefill DoP for a tiny request is fit-dependent (all
        strategies predict ~the constant overhead), but the proactive
        scale-down must still park its decode on a single instance."""
        config, manager = manager_env
        pool, instances = fresh_state(config)
        request = make_request(input_len=64)
        plan = manager.schedule(0.0, [request], instances, pool, [], 0.0)
        assert len(plan.prefills[0].scale_down.kept_instances) == 1

    def test_batches_use_disjoint_instances(self, manager_env):
        config, manager = manager_env
        pool, instances = fresh_state(config)
        pending = [make_request(input_len=n) for n in (60_000, 59_000, 100, 90)]
        plan = manager.schedule(0.0, pending, instances, pool, [], 0.0)
        used = [
            i for planned in plan.prefills for i in planned.task.group.instance_ids
        ]
        assert len(used) == len(set(used))

    def test_scale_up_planned_under_memory_pressure(self, manager_env):
        config, manager = manager_env
        pool, instances = fresh_state(config)
        filler = make_request(
            input_len=config.kv_slots_per_instance - 20, output_len=500
        )
        filler.generated = 10
        filler.prefill_end = 0.0
        batch = DecodeBatch(batch_id=next_batch_id())
        batch.group = ParallelGroup(instance_ids=(0,), tensor_parallel=2)
        batch.requests.append(filler)
        pool.place(filler.request_id, {0: filler.current_len})
        instances[0].assign(InstanceRole.DECODE, batch.batch_id)
        plan = manager.schedule(0.0, [], instances, pool, [batch], 0.0)
        assert plan.scale_ups
        scaled_batch, decision = plan.scale_ups[0]
        assert scaled_batch is batch
        assert decision.reason == "memory"

    def test_no_scale_up_when_disabled(self):
        config = default_config(scheduler=SchedulerConfig(enable_scale_up=False))
        cost = RooflineCostModel(cluster=config.cluster, model=config.model)
        manager = GlobalManager(config, cost)
        pool, instances = fresh_state(config)
        filler = make_request(
            input_len=config.kv_slots_per_instance - 50, output_len=500
        )
        filler.generated = 10
        batch = DecodeBatch(batch_id=next_batch_id())
        batch.group = ParallelGroup(instance_ids=(0,), tensor_parallel=2)
        batch.requests.append(filler)
        pool.place(filler.request_id, {0: filler.current_len})
        instances[0].assign(InstanceRole.DECODE, batch.batch_id)
        plan = manager.schedule(0.0, [], instances, pool, [batch], 0.0)
        assert not plan.scale_ups

    def test_prefill_consolidates_sparse_decode(self, manager_env):
        """A long prefill drains lightly-used decode instances (Eq. 3/4),
        consolidating their KV onto peers."""
        config, manager = manager_env
        pool, instances = fresh_state(config)
        batch_a = decode_batch_on(pool, instances, [0], tokens_each=200)
        batch_b = decode_batch_on(pool, instances, [1], tokens_each=200)
        request = make_request(input_len=250_000)
        plan = manager.schedule(0.0, [request], instances, pool,
                                [batch_a, batch_b], 1.0)
        assert plan.prefills
        assert plan.prefills[0].task.dop >= 3
        assert plan.decode_scale_downs  # at least one batch shrank

    def test_plan_respects_pool_capacity(self, manager_env):
        config, manager = manager_env
        pool, instances = fresh_state(config)
        oversize = make_request(input_len=config.total_kv_slots + 10)
        plan = manager.schedule(0.0, [oversize], instances, pool, [], 0.0)
        assert not plan.prefills  # cannot place; server aborts it instead
