"""Tests for the text-mode timeline visualisation."""

import pytest

from repro.types import BatchStats, Phase, ServeResult
from repro.viz.timeline import occupancy_timeline, utilization_summary


def make_result(stats: list[BatchStats], makespan: float) -> ServeResult:
    return ServeResult(system="x", iteration_stats=stats, makespan=makespan)


def stat(phase: Phase, start: float, duration: float, dop: int) -> BatchStats:
    return BatchStats(
        iteration=0, phase=phase, batch_size=1, total_tokens=10,
        dop=dop, duration=duration, start_time=start,
    )


class TestOccupancyTimeline:
    def test_empty_run(self):
        assert "no iterations" in occupancy_timeline(make_result([], 0.0), 4)

    def test_prefill_marks_rendered(self):
        result = make_result([stat(Phase.PREFILL, 0.0, 10.0, 4)], makespan=10.0)
        text = occupancy_timeline(result, num_instances=4, columns=10)
        assert "P" in text
        assert text.count("\n") >= 4  # 4 instance rows + axis + legend

    def test_decode_marks_rendered(self):
        result = make_result([stat(Phase.DECODE, 0.0, 10.0, 2)], makespan=10.0)
        text = occupancy_timeline(result, num_instances=4, columns=10)
        assert "d" in text
        top_row = text.splitlines()[0]
        assert "d" not in top_row  # only 2 of 4 slots busy

    def test_idle_periods_dotted(self):
        result = make_result([stat(Phase.PREFILL, 0.0, 1.0, 1)], makespan=10.0)
        text = occupancy_timeline(result, num_instances=2, columns=10)
        assert "." in text

    def test_axis_shows_makespan(self):
        result = make_result([stat(Phase.PREFILL, 0.0, 5.0, 1)], makespan=5.0)
        assert "5.0s" in occupancy_timeline(result, 2, columns=20)


class TestUtilizationSummary:
    def test_fractions_sum_to_one(self):
        result = make_result(
            [stat(Phase.PREFILL, 0.0, 5.0, 2), stat(Phase.DECODE, 5.0, 5.0, 1)],
            makespan=10.0,
        )
        util = utilization_summary(result, num_instances=2)
        assert util["prefill"] + util["decode"] + util["idle"] == pytest.approx(1.0)
        assert util["prefill"] == pytest.approx(0.5)
        assert util["decode"] == pytest.approx(0.25)

    def test_zero_makespan_is_idle(self):
        util = utilization_summary(make_result([], 0.0), 2)
        assert util["idle"] == 1.0
