"""Integration tests for the LoongServe serving loop."""

import pytest

from repro.config import SchedulerConfig, default_config
from repro.core.server import LoongServeServer
from repro.types import Phase, RequestState
from repro.workloads.datasets import LEVAL, SHAREGPT
from repro.workloads.trace_gen import clone_requests, make_trace
from tests.conftest import make_request


@pytest.fixture(scope="module")
def server() -> LoongServeServer:
    return LoongServeServer(default_config())


class TestBasicServing:
    def test_single_request_completes(self, server):
        request = make_request(input_len=1_000, output_len=5, arrival=0.0)
        result = server.run([request])
        assert request.state == RequestState.FINISHED
        assert request.finish_time is not None
        assert request.generated == 5
        assert result.makespan > 0

    def test_single_token_output(self, server):
        """output_len == 1 finishes at prefill completion."""
        request = make_request(input_len=500, output_len=1)
        server.run([request])
        assert request.finished
        assert request.prefill_end == request.finish_time

    def test_all_requests_complete(self, server):
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=40, seed=3)
        result = server.run(trace)
        assert len(result.finished_requests) == 40
        assert not result.aborted

    def test_pool_empty_after_run(self, server):
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=20, seed=4)
        server.run(trace)
        assert server.pool.total_used == 0

    def test_instances_idle_after_run(self, server):
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=20, seed=5)
        server.run(trace)
        assert all(inst.is_idle for inst in server.instances.values())

    def test_latency_ordering_invariants(self, server):
        trace = make_trace(SHAREGPT, rate=5.0, num_requests=15, seed=6)
        result = server.run(trace)
        for request in result.finished_requests:
            assert request.arrival_time <= request.prefill_start
            assert request.prefill_start <= request.prefill_end
            assert request.prefill_end <= request.finish_time

    def test_deterministic_across_runs(self):
        config = default_config()
        trace = make_trace(SHAREGPT, rate=8.0, num_requests=25, seed=7)
        a = LoongServeServer(config).run(clone_requests(trace))
        b = LoongServeServer(config).run(clone_requests(trace))
        lat_a = sorted(r.normalized_latency for r in a.finished_requests)
        lat_b = sorted(r.normalized_latency for r in b.finished_requests)
        assert lat_a == pytest.approx(lat_b)


class TestMemoryManagement:
    def test_oversized_request_aborted(self, server):
        request = make_request(input_len=10_000_000, output_len=5)
        result = server.run([request])
        assert request in result.aborted
        assert not result.requests

    def test_long_request_spans_instances(self):
        """A request bigger than one instance's pool still serves — the
        unified pool has no locality constraint (Figure 4)."""
        config = default_config()
        server = LoongServeServer(config)
        per_instance = config.kv_slots_per_instance
        request = make_request(input_len=int(1.5 * per_instance), output_len=3)
        result = server.run([request])
        assert request.finished
        assert not result.aborted

    def test_kv_accounting_during_decode(self):
        server = LoongServeServer(default_config())
        request = make_request(input_len=100, output_len=50)
        server.run([request])
        assert request.generated == 50


class TestElasticity:
    def test_scale_down_recorded_for_long_prefill(self):
        server = LoongServeServer(default_config())
        request = make_request(input_len=200_000, output_len=20)
        result = server.run([request])
        downs = [e for e in result.scaling_events if e.kind == "scale_down"]
        assert downs, "a DoP-4 prefill of a long request must scale down"
        assert len(downs[0].group_after) < len(downs[0].group_before)

    def test_decode_runs_on_kept_instances_only(self):
        server = LoongServeServer(default_config())
        request = make_request(input_len=200_000, output_len=30)
        result = server.run([request])
        decode_stats = [s for s in result.iteration_stats if s.phase == Phase.DECODE]
        assert decode_stats
        assert max(s.dop for s in decode_stats) < 4

    def test_prefill_uses_high_dop_for_long_request(self):
        server = LoongServeServer(default_config())
        request = make_request(input_len=300_000, output_len=5)
        result = server.run([request])
        prefill_stats = [s for s in result.iteration_stats if s.phase == Phase.PREFILL]
        assert prefill_stats[0].dop == 4

    def test_scale_up_disabled_honored(self):
        from repro.baselines.no_scaleup import build_no_scale_up_loongserve

        server = build_no_scale_up_loongserve()
        trace = make_trace(SHAREGPT, rate=30.0, num_requests=150, seed=8)
        result = server.run(trace)
        ups = [e for e in result.scaling_events if e.kind == "scale_up"]
        assert not ups

    def test_scale_up_fires_under_load(self):
        server = LoongServeServer(default_config())
        trace = make_trace(SHAREGPT, rate=40.0, num_requests=300, seed=9)
        result = server.run(trace)
        ups = [e for e in result.scaling_events if e.kind == "scale_up"]
        assert ups, "sustained ShareGPT load must trigger elastic scale-up"

    def test_multiple_batches_coexist(self):
        """Prefill and decode proceed concurrently on disjoint groups."""
        server = LoongServeServer(default_config())
        trace = make_trace(LEVAL, rate=2.0, num_requests=20, seed=10)
        result = server.run(trace)
        assert len(result.finished_requests) == 20
        stats = result.iteration_stats
        prefill_windows = [
            (s.start_time, s.start_time + s.duration)
            for s in stats
            if s.phase == Phase.PREFILL
        ]
        decode_times = [s.start_time for s in stats if s.phase == Phase.DECODE]
        overlapped = any(
            lo < t < hi for t in decode_times for lo, hi in prefill_windows
        )
        assert overlapped, "decode iterations should run during prefills"


class TestColdStartCoopting:
    """Regression: before any request finishes, AvgLat_d must be seeded
    from the predictor, not hard-zeroed — a zero average nulls the Eq. 2
    gain and disables co-opting for a run's entire warm-up."""

    def _server_with_decode_batch(self):
        from repro.core.batch import DecodeBatch, next_batch_id
        from repro.parallel.groups import ParallelGroup

        server = LoongServeServer(default_config())
        batch = DecodeBatch(batch_id=next_batch_id())
        batch.group = ParallelGroup(instance_ids=(2, 3), tensor_parallel=2)
        for _ in range(2):
            request = make_request(input_len=50, output_len=2_000)
            request.generated = 1_000
            request.prefill_end = 0.0
            batch.requests.append(request)
        server.decode_batches.append(batch)
        return server, batch

    def test_cold_average_is_zero_without_decode_batches(self):
        server = LoongServeServer(default_config())
        assert server._avg_decode_latency() == 0.0  # nothing to co-opt

    def test_cold_average_seeded_from_predictor(self):
        server, _ = self._server_with_decode_batch()
        assert server._decode_latency_count == 0
        assert server._avg_decode_latency() > 0.0

    def test_measured_average_takes_over(self):
        server, _ = self._server_with_decode_batch()
        server._decode_latency_sum = 4.0
        server._decode_latency_count = 2
        assert server._avg_decode_latency() == pytest.approx(2.0)

    def test_coopt_can_fire_on_cold_system(self):
        """The seeded estimate lets the Eq. 1/2 analysis co-opt a decode
        batch before the first request ever finishes, where the old
        hard-zero average could not."""
        from repro.config import SchedulerConfig
        from repro.core.dispatching import select_prefill_requests

        server, batch = self._server_with_decode_batch()
        seeded = server._avg_decode_latency()
        pending = [make_request(input_len=100) for _ in range(6)]
        free = {0: 0, 1: 0, 2: 50_000, 3: 50_000}
        config = SchedulerConfig(prefill_tipping_tokens=150)

        def dispatch(avg):
            return select_prefill_requests(
                pending, [], free, [batch],
                server.manager.predictor, 2, config,
                avg_decode_latency=avg, now=0.0,
            )

        cold = dispatch(0.0)
        assert not cold.coopted_batches  # zero gain: the old behaviour
        warm = dispatch(seeded)
        assert batch in warm.coopted_batches
        assert len(warm.requests) > 1


class TestSchedulerConfigKnobs:
    def test_small_max_batch_size(self):
        config = default_config(scheduler=SchedulerConfig(max_batch_size=1))
        server = LoongServeServer(config)
        trace = make_trace(SHAREGPT, rate=5.0, num_requests=10, seed=11)
        result = server.run(trace)
        assert len(result.finished_requests) == 10

    def test_multi_master_disabled_still_serves(self):
        config = default_config(scheduler=SchedulerConfig(enable_multi_master=False))
        server = LoongServeServer(config)
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=30, seed=12)
        result = server.run(trace)
        assert len(result.finished_requests) == 30
