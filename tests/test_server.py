"""Integration tests for the LoongServe serving loop."""

import pytest

from repro.config import SchedulerConfig, default_config
from repro.core.server import LoongServeServer
from repro.types import Phase, RequestState
from repro.workloads.datasets import LEVAL, SHAREGPT
from repro.workloads.trace_gen import clone_requests, make_trace
from tests.conftest import make_request


@pytest.fixture(scope="module")
def server() -> LoongServeServer:
    return LoongServeServer(default_config())


class TestBasicServing:
    def test_single_request_completes(self, server):
        request = make_request(input_len=1_000, output_len=5, arrival=0.0)
        result = server.run([request])
        assert request.state == RequestState.FINISHED
        assert request.finish_time is not None
        assert request.generated == 5
        assert result.makespan > 0

    def test_single_token_output(self, server):
        """output_len == 1 finishes at prefill completion."""
        request = make_request(input_len=500, output_len=1)
        server.run([request])
        assert request.finished
        assert request.prefill_end == request.finish_time

    def test_all_requests_complete(self, server):
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=40, seed=3)
        result = server.run(trace)
        assert len(result.finished_requests) == 40
        assert not result.aborted

    def test_pool_empty_after_run(self, server):
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=20, seed=4)
        server.run(trace)
        assert server.pool.total_used == 0

    def test_instances_idle_after_run(self, server):
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=20, seed=5)
        server.run(trace)
        assert all(inst.is_idle for inst in server.instances.values())

    def test_latency_ordering_invariants(self, server):
        trace = make_trace(SHAREGPT, rate=5.0, num_requests=15, seed=6)
        result = server.run(trace)
        for request in result.finished_requests:
            assert request.arrival_time <= request.prefill_start
            assert request.prefill_start <= request.prefill_end
            assert request.prefill_end <= request.finish_time

    def test_deterministic_across_runs(self):
        config = default_config()
        trace = make_trace(SHAREGPT, rate=8.0, num_requests=25, seed=7)
        a = LoongServeServer(config).run(clone_requests(trace))
        b = LoongServeServer(config).run(clone_requests(trace))
        lat_a = sorted(r.normalized_latency for r in a.finished_requests)
        lat_b = sorted(r.normalized_latency for r in b.finished_requests)
        assert lat_a == pytest.approx(lat_b)


class TestMemoryManagement:
    def test_oversized_request_aborted(self, server):
        request = make_request(input_len=10_000_000, output_len=5)
        result = server.run([request])
        assert request in result.aborted
        assert not result.requests

    def test_long_request_spans_instances(self):
        """A request bigger than one instance's pool still serves — the
        unified pool has no locality constraint (Figure 4)."""
        config = default_config()
        server = LoongServeServer(config)
        per_instance = config.kv_slots_per_instance
        request = make_request(input_len=int(1.5 * per_instance), output_len=3)
        result = server.run([request])
        assert request.finished
        assert not result.aborted

    def test_kv_accounting_during_decode(self):
        server = LoongServeServer(default_config())
        request = make_request(input_len=100, output_len=50)
        server.run([request])
        assert request.generated == 50


class TestElasticity:
    def test_scale_down_recorded_for_long_prefill(self):
        server = LoongServeServer(default_config())
        request = make_request(input_len=200_000, output_len=20)
        result = server.run([request])
        downs = [e for e in result.scaling_events if e.kind == "scale_down"]
        assert downs, "a DoP-4 prefill of a long request must scale down"
        assert len(downs[0].group_after) < len(downs[0].group_before)

    def test_decode_runs_on_kept_instances_only(self):
        server = LoongServeServer(default_config())
        request = make_request(input_len=200_000, output_len=30)
        result = server.run([request])
        decode_stats = [s for s in result.iteration_stats if s.phase == Phase.DECODE]
        assert decode_stats
        assert max(s.dop for s in decode_stats) < 4

    def test_prefill_uses_high_dop_for_long_request(self):
        server = LoongServeServer(default_config())
        request = make_request(input_len=300_000, output_len=5)
        result = server.run([request])
        prefill_stats = [s for s in result.iteration_stats if s.phase == Phase.PREFILL]
        assert prefill_stats[0].dop == 4

    def test_scale_up_disabled_honored(self):
        from repro.baselines.no_scaleup import build_no_scale_up_loongserve

        server = build_no_scale_up_loongserve()
        trace = make_trace(SHAREGPT, rate=30.0, num_requests=150, seed=8)
        result = server.run(trace)
        ups = [e for e in result.scaling_events if e.kind == "scale_up"]
        assert not ups

    def test_scale_up_fires_under_load(self):
        server = LoongServeServer(default_config())
        trace = make_trace(SHAREGPT, rate=40.0, num_requests=300, seed=9)
        result = server.run(trace)
        ups = [e for e in result.scaling_events if e.kind == "scale_up"]
        assert ups, "sustained ShareGPT load must trigger elastic scale-up"

    def test_multiple_batches_coexist(self):
        """Prefill and decode proceed concurrently on disjoint groups."""
        server = LoongServeServer(default_config())
        trace = make_trace(LEVAL, rate=2.0, num_requests=20, seed=10)
        result = server.run(trace)
        assert len(result.finished_requests) == 20
        stats = result.iteration_stats
        prefill_windows = [
            (s.start_time, s.start_time + s.duration)
            for s in stats
            if s.phase == Phase.PREFILL
        ]
        decode_times = [s.start_time for s in stats if s.phase == Phase.DECODE]
        overlapped = any(
            lo < t < hi for t in decode_times for lo, hi in prefill_windows
        )
        assert overlapped, "decode iterations should run during prefills"


class TestSchedulerConfigKnobs:
    def test_small_max_batch_size(self):
        config = default_config(scheduler=SchedulerConfig(max_batch_size=1))
        server = LoongServeServer(config)
        trace = make_trace(SHAREGPT, rate=5.0, num_requests=10, seed=11)
        result = server.run(trace)
        assert len(result.finished_requests) == 10

    def test_multi_master_disabled_still_serves(self):
        config = default_config(scheduler=SchedulerConfig(enable_multi_master=False))
        server = LoongServeServer(config)
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=30, seed=12)
        result = server.run(trace)
        assert len(result.finished_requests) == 30
