"""Property-based invariants of the dispatching step (§5.1).

Hypothesis drives randomized pending queues and decode-batch states
through ``select_prefill_requests`` and asserts its two hard budgets:
committed KV slots never exceed the obtainable memory, and committed
tokens never exceed the tipping-point compute budget (modulo the single
oversized-first-request exemption that keeps an empty system live).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.config import SchedulerConfig
from repro.core.batch import DecodeBatch, next_batch_id
from repro.core.dispatching import select_prefill_requests
from repro.costmodel.latency import RooflineCostModel
from repro.model.spec import LWM_7B_1M
from repro.parallel.groups import ParallelGroup
from repro.core.sib import ScalingInformationBase
from repro.parallel.strategy import strategies_for_gpus
from tests.conftest import make_request

NUM_INSTANCES = 4


@pytest.fixture(scope="module")
def predictor():
    cost = RooflineCostModel(cluster=Cluster.homogeneous(8), model=LWM_7B_1M)
    sib = ScalingInformationBase()
    return sib.profile_strategies(cost, strategies_for_gpus(8, 2), max_len=100_000)


def _make_batch(instance_ids, request_specs):
    batch = DecodeBatch(batch_id=next_batch_id())
    batch.group = ParallelGroup(instance_ids=tuple(instance_ids), tensor_parallel=2)
    for input_len, output_len, generated in request_specs:
        request = make_request(input_len=input_len, output_len=output_len)
        request.generated = min(generated, output_len - 1) if output_len > 1 else 0
        request.prefill_end = 0.0
        batch.requests.append(request)
    return batch


pending_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=20_000),  # input_len
        st.integers(min_value=1, max_value=50),      # output_len
    ),
    min_size=1,
    max_size=15,
)

batch_request_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=5_000),   # input_len
        st.integers(min_value=1, max_value=200),     # output_len
        st.integers(min_value=0, max_value=199),     # generated
    ),
    min_size=1,
    max_size=3,
)


@given(data=st.data())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_dispatch_never_exceeds_budgets(predictor, data):
    free_slots = {
        i: data.draw(st.integers(min_value=0, max_value=20_000), label=f"free{i}")
        for i in range(NUM_INSTANCES)
    }
    idle_count = data.draw(st.integers(min_value=0, max_value=NUM_INSTANCES), label="idle")
    idle = list(range(idle_count))
    busy = [i for i in range(NUM_INSTANCES) if i not in idle]

    batches = []
    while busy:
        width = data.draw(st.integers(min_value=1, max_value=len(busy)), label="width")
        group, busy = busy[:width], busy[width:]
        batches.append(_make_batch(group, data.draw(batch_request_strategy, label="reqs")))

    pending = [
        make_request(input_len=input_len, output_len=output_len)
        for input_len, output_len in data.draw(pending_strategy, label="pending")
    ]
    tipping = data.draw(st.integers(min_value=500, max_value=10_000), label="tipping")
    avg = data.draw(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False), label="avg"
    )
    config = SchedulerConfig(prefill_tipping_tokens=tipping)

    decision = select_prefill_requests(
        pending, idle, free_slots, batches, predictor, 2, config,
        avg_decode_latency=avg, now=0.0,
    )

    # Memory: committed slots fit the obtainable memory (idle free plus
    # preemptable decode instances' free) — co-opting adds compute, never
    # memory, so no decision may commit past it.
    preemptable = {i for b in batches for i in b.instance_ids} - set(idle)
    memory_budget = sum(free_slots[i] for i in idle)
    memory_budget += sum(free_slots[i] for i in preemptable)
    committed_slots = sum(r.current_len + 1 for r in decision.requests)
    assert committed_slots <= memory_budget

    # Compute: committed tokens respect the tipping point of the executing
    # group (idle base + co-opted instances).  A single oversized first
    # request is exempt, otherwise an empty system could never start.
    token_budget = tipping * max(1, len(idle))
    token_budget += tipping * sum(len(b.instance_ids) for b in decision.coopted_batches)
    committed_tokens = sum(r.current_len for r in decision.requests)
    if len(decision.requests) > 1:
        assert committed_tokens <= token_budget

    # Sanity: FCFS subset, no duplicates.
    ids = [r.request_id for r in decision.requests]
    assert len(set(ids)) == len(ids)
    pending_ids = [r.request_id for r in pending]
    assert all(i in pending_ids for i in ids)
