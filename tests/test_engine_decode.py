"""Equivalence tests for single-/multi-master distributed decoding (§4.2)."""

import numpy as np
import pytest

from repro.engine.decode import DistributedDecoder
from repro.engine.instance import FunctionalInstance
from repro.engine.reference import ReferenceTransformer, next_token_embedding
from repro.engine.striped import striped_prefill
from repro.engine.weights import TransformerWeights


def make_weights(seed: int = 0, num_kv_heads: int = 2) -> TransformerWeights:
    return TransformerWeights.random(
        hidden_size=32, num_heads=4, num_kv_heads=num_kv_heads, num_layers=2, seed=seed
    )


def make_instances(weights: TransformerWeights, count: int) -> list[FunctionalInstance]:
    return [
        FunctionalInstance(i, weights.num_layers, weights.num_kv_heads, weights.head_dim)
        for i in range(count)
    ]


def generate_reference(weights, x, steps):
    ref = ReferenceTransformer(weights)
    hidden, cache = ref.prefill(x)
    outputs = [hidden[-1]]
    for _ in range(steps):
        outputs.append(ref.decode_step(next_token_embedding(outputs[-1]), cache))
    return outputs


class TestSingleMasterDecoding:
    @pytest.mark.parametrize("sp", [1, 2, 3])
    def test_matches_reference_over_steps(self, sp):
        weights = make_weights()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((9, weights.hidden_size))
        expected = generate_reference(weights, x, steps=5)

        instances = make_instances(weights, sp)
        run = striped_prefill(weights, x, instances, request_id=0)
        decoder = DistributedDecoder(weights=weights, instances=instances)
        outputs = [run.last_hidden]
        for _ in range(5):
            result = decoder.decode_step(
                {0: next_token_embedding(outputs[-1])}, masters={0: 0}
            )
            outputs.append(result.hidden[0])
        for got, want in zip(outputs, expected):
            np.testing.assert_allclose(got, want, atol=1e-9)

    def test_new_kv_stays_on_master(self):
        weights = make_weights()
        rng = np.random.default_rng(1)
        x = rng.standard_normal((6, weights.hidden_size))
        instances = make_instances(weights, 2)
        run = striped_prefill(weights, x, instances, request_id=0)
        decoder = DistributedDecoder(weights=weights, instances=instances)
        before = instances[1].tokens_held(0)
        decoder.decode_step({0: next_token_embedding(run.last_hidden)}, masters={0: 1})
        assert instances[1].tokens_held(0) == before + 1
        assert decoder.request_length(0) == 7

    def test_no_kv_migration_ever(self):
        weights = make_weights()
        rng = np.random.default_rng(2)
        x = rng.standard_normal((5, weights.hidden_size))
        instances = make_instances(weights, 2)
        run = striped_prefill(weights, x, instances, request_id=0)
        decoder = DistributedDecoder(weights=weights, instances=instances)
        result = decoder.decode_step(
            {0: next_token_embedding(run.last_hidden)}, masters={0: 0}
        )
        assert result.kv_migrated_tokens == 0

    def test_missing_master_raises(self):
        weights = make_weights()
        decoder = DistributedDecoder(weights=weights, instances=make_instances(weights, 1))
        with pytest.raises(ValueError):
            decoder.decode_step({0: np.zeros(weights.hidden_size)}, masters={})


class TestMultiMasterDecoding:
    def test_batch_requests_match_reference(self):
        """Two requests mastered by different instances, both exact."""
        weights = make_weights(seed=5)
        rng = np.random.default_rng(3)
        xa = rng.standard_normal((7, weights.hidden_size))
        xb = rng.standard_normal((11, weights.hidden_size))
        expected_a = generate_reference(weights, xa, steps=3)
        expected_b = generate_reference(weights, xb, steps=3)

        instances = make_instances(weights, 2)
        run_a = striped_prefill(weights, xa, instances, request_id=10)
        run_b = striped_prefill(weights, xb, instances, request_id=11)
        decoder = DistributedDecoder(weights=weights, instances=instances)
        outs_a, outs_b = [run_a.last_hidden], [run_b.last_hidden]
        for _ in range(3):
            result = decoder.decode_step(
                {
                    10: next_token_embedding(outs_a[-1]),
                    11: next_token_embedding(outs_b[-1]),
                },
                masters={10: 0, 11: 1},
            )
            outs_a.append(result.hidden[10])
            outs_b.append(result.hidden[11])
        for got, want in zip(outs_a, expected_a):
            np.testing.assert_allclose(got, want, atol=1e-9)
        for got, want in zip(outs_b, expected_b):
            np.testing.assert_allclose(got, want, atol=1e-9)

    def test_masters_store_their_own_requests(self):
        weights = make_weights()
        rng = np.random.default_rng(4)
        instances = make_instances(weights, 2)
        xa = rng.standard_normal((4, weights.hidden_size))
        xb = rng.standard_normal((4, weights.hidden_size))
        run_a = striped_prefill(weights, xa, instances, request_id=1)
        run_b = striped_prefill(weights, xb, instances, request_id=2)
        decoder = DistributedDecoder(weights=weights, instances=instances)
        decoder.decode_step(
            {
                1: next_token_embedding(run_a.last_hidden),
                2: next_token_embedding(run_b.last_hidden),
            },
            masters={1: 0, 2: 1},
        )
        assert instances[0].shard(1, 0).positions.max() == 4
        assert instances[1].shard(2, 0).positions.max() == 4


class TestElasticScaleUp:
    def test_scale_up_mid_generation_stays_exact(self):
        """§4.2: new instances join with zero KV movement and the output
        stream is unchanged."""
        weights = make_weights(seed=7)
        rng = np.random.default_rng(5)
        x = rng.standard_normal((8, weights.hidden_size))
        expected = generate_reference(weights, x, steps=6)

        instances = make_instances(weights, 2)
        run = striped_prefill(weights, x, instances, request_id=0)
        decoder = DistributedDecoder(weights=weights, instances=instances)
        outputs = [run.last_hidden]
        for step in range(6):
            if step == 3:  # scale up mid-stream
                extra = FunctionalInstance(
                    99, weights.num_layers, weights.num_kv_heads, weights.head_dim
                )
                decoder.scale_up([extra])
                # The new master stores subsequent KV locally.
                masters = {0: 99}
            else:
                masters = {0: 0}
            result = decoder.decode_step(
                {0: next_token_embedding(outputs[-1])}, masters=masters
            )
            outputs.append(result.hidden[0])
        for got, want in zip(outputs, expected):
            np.testing.assert_allclose(got, want, atol=1e-9)
        assert decoder.placement_of(0).get(99, 0) >= 1

    def test_scale_up_rejects_duplicate(self):
        weights = make_weights()
        instances = make_instances(weights, 2)
        decoder = DistributedDecoder(weights=weights, instances=instances)
        with pytest.raises(ValueError):
            decoder.scale_up([instances[0]])

    def test_query_messages_counted(self):
        weights = make_weights()
        rng = np.random.default_rng(6)
        x = rng.standard_normal((6, weights.hidden_size))
        instances = make_instances(weights, 3)
        run = striped_prefill(weights, x, instances, request_id=0)
        decoder = DistributedDecoder(weights=weights, instances=instances)
        result = decoder.decode_step(
            {0: next_token_embedding(run.last_hidden)}, masters={0: 0}
        )
        # 2 peers x 2 layers x (query out + partial back) = 8 messages.
        assert result.query_messages == 8
