"""Host/SSD KV tiers: victim policies, swap-in pricing, chaos invariants.

Three layers:

* **Store units** — LRU/FIFO/LIFO victim selection, dedup on offload,
  drop-off-the-bottom accounting, and fetch-is-a-move semantics on
  :class:`~repro.kvcache.tiers.TieredKVStore` directly.
* **Cache integration** — a prefix hit on an offloaded extent swaps it
  back up and charges the transfer to the benefiting prefill via the
  swap-debt ledger, measured end-to-end as a finish-time delta against
  an identical run that never evicted.
* **Chaos** — token conservation (every offloaded token is resident,
  swapped back in, or dropped) and no-double-residency hold under
  random store op schedules and under fleet runs with random crash +
  steal schedules.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SchedulerConfig, default_config
from repro.core.server import LoongServeServer
from repro.experiments.systems import make_fleet
from repro.fleet import FaultPlan, ReplicaFault
from repro.kvcache.tiers import VICTIM_POLICIES, TieredKVStore
from repro.kvcache.unified import UnifiedKVPool
from repro.sessions import make_session_trace
from repro.sessions.prefix_cache import PrefixKVCache
from repro.types import Request
from repro.workloads.trace_gen import clone_requests

# Three disjoint sequence lines (distinct first tokens), 10 tokens each.
SEQ_A = tuple(range(100, 110))
SEQ_B = tuple(range(200, 210))
SEQ_C = tuple(range(300, 310))


class TestVictimPolicies:
    def _overflow(self, policy):
        """Insert A, B, C (25-token host) with last_access order B < A < C
        and insertion order A < B < C; C's insert overflows the host tier."""
        store = TieredKVStore(
            policy=policy, host_capacity_tokens=25, ssd_capacity_tokens=100
        )
        store.offload(SEQ_A, 0, now=5.0)
        store.offload(SEQ_B, 0, now=1.0)
        store.offload(SEQ_C, 0, now=9.0)
        store.check_invariants()
        return store

    def test_lru_demotes_the_coldest(self):
        store = self._overflow("lru")
        assert [seq for seq, _, _ in store.extents("ssd")] == [SEQ_B]

    def test_fifo_demotes_the_oldest_inserted(self):
        store = self._overflow("fifo")
        assert [seq for seq, _, _ in store.extents("ssd")] == [SEQ_A]

    def test_lifo_demotes_the_newest_inserted(self):
        store = self._overflow("lifo")
        assert [seq for seq, _, _ in store.extents("ssd")] == [SEQ_C]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="victim policy"):
            TieredKVStore(policy="random")
        assert set(VICTIM_POLICIES) == {"lru", "fifo", "lifo"}


class TestStoreSemantics:
    def test_drop_off_the_bottom_is_counted(self):
        store = TieredKVStore(
            policy="fifo", host_capacity_tokens=10, ssd_capacity_tokens=10
        )
        store.offload(SEQ_A, 0, now=1.0)
        store.offload(SEQ_B, 0, now=2.0)  # A demotes to SSD
        store.offload(SEQ_C, 0, now=3.0)  # B demotes, A falls off
        store.check_invariants()
        assert store.stats.dropped_tokens == len(SEQ_A)
        assert store.resident_tokens() == 20

    def test_covered_extent_is_rejected(self):
        store = TieredKVStore(host_capacity_tokens=100)
        assert store.offload(SEQ_A, 0, now=1.0) == 10
        # The same span (and any sub-span) is already resident.
        assert store.offload(SEQ_A, 0, now=2.0) == 0
        assert store.offload(SEQ_A, 5, now=3.0) == 0
        store.check_invariants()

    def test_fetch_is_a_move_with_priced_transfer(self):
        store = TieredKVStore(host_capacity_tokens=100, bytes_per_token=1e6)
        store.offload(SEQ_A, 0, now=1.0)
        assert store.probe(SEQ_A, 0) == len(SEQ_A)
        usable, seconds = store.fetch(SEQ_A, 0, now=2.0)
        assert usable == len(SEQ_A)
        assert seconds > 0.0
        assert len(store) == 0  # swap-in moved the extent, never copied
        assert store.stats.swapped_in_tokens == len(SEQ_A)
        store.check_invariants()
        # Nothing left: a second fetch is a free no-op.
        assert store.fetch(SEQ_A, 0, now=3.0) == (0, 0.0)

    def test_fetch_without_extension_is_free(self):
        store = TieredKVStore(host_capacity_tokens=100, bytes_per_token=1e6)
        store.offload(SEQ_A, 0, now=1.0)
        # GPU residency already covers the extent: no swap.
        assert store.fetch(SEQ_A, len(SEQ_A), now=2.0) == (len(SEQ_A), 0.0)
        assert store.stats.swapped_in_tokens == 0


class TestCacheIntegration:
    def _adopt(self, cache, pool, request_id, tokens, output_len=4, now=0.0):
        prompt = tokens[:-output_len]
        request = Request(
            request_id=request_id, input_len=len(prompt),
            output_len=output_len, token_ids=tuple(prompt),
        )
        request.generated = output_len
        pool.place(request_id, {0: len(tokens) - 1})
        cache.adopt_finished(request, tuple(tokens), now=now)
        return request

    def test_offloaded_hit_swaps_back_and_charges_debt(self):
        pool = UnifiedKVPool.create(num_instances=2, slots_per_instance=1_000)
        tiers = TieredKVStore(policy="lru", bytes_per_token=1e6)
        cache = PrefixKVCache(pool, tiers=tiers)
        tokens = list(range(400, 430))
        self._adopt(cache, pool, 1, tokens, now=1.0)
        assert cache.resident_tokens == 29
        # Evict everything: the extent demotes into the host tier.
        assert cache.evict(10_000) == 29
        assert cache.resident_tokens == 0
        assert tiers.resident_tokens("host") == 29
        # A new request over the same prompt hits the offloaded extent:
        # the match is whole again and the transfer lands in the ledger.
        request = Request(
            request_id=2, input_len=26, output_len=2,
            token_ids=tuple(tokens[:26]),
        )
        matched = cache.match_and_lock(request, now=2.0)
        assert matched == 25  # capped at input_len - 1
        assert tiers.stats.swapped_in_tokens == 29
        debt = cache.take_swap_debt(2)
        assert debt > 0.0
        assert cache.take_swap_debt(2) == 0.0  # charged exactly once

    def test_swap_in_latency_lands_in_the_prefill(self):
        """The same three-request trace, with and without a cache cap:
        the cap (which holds one conversation's extent, not two) demotes
        conversation A's KV when B's is adopted, so A's second turn must
        swap it back up — and its finish shifts by exactly the swap time,
        the only extra work the capped run does on A's critical path."""
        tokens_a = tuple(range(1000, 1600))
        tokens_b = tuple(range(5000, 5600))
        trace = [
            Request(request_id=1, input_len=600, output_len=4,
                    arrival_time=0.0, token_ids=tokens_a),
            Request(request_id=2, input_len=600, output_len=4,
                    arrival_time=30.0, token_ids=tokens_b),
            Request(request_id=3, input_len=600, output_len=4,
                    arrival_time=60.0, token_ids=tokens_a),
        ]

        def run(max_cached_tokens):
            config = default_config(scheduler=SchedulerConfig(
                enable_prefix_cache=True,
                max_cached_tokens=max_cached_tokens,
                kv_tier_policy="lru",
            ))
            server = LoongServeServer(config)
            result = server.run(clone_requests(trace))
            by_id = {r.request_id: r for r in result.requests}
            return by_id, server.prefix_cache.tiers.stats

        pure_hit, pure_stats = run(max_cached_tokens=None)
        offloaded, offl_stats = run(max_cached_tokens=700)
        assert pure_stats.swapped_in_tokens == 0
        assert offl_stats.swapped_in_tokens > 0
        assert offl_stats.swap_in_seconds > 0.0
        # Turn 3 still hits: the swapped-in extent covers its prompt.
        assert offloaded[3].cached_prefix_len == pure_hit[3].cached_prefix_len > 0
        # Requests 1 and 2 are untouched (eviction happens at adoption).
        assert offloaded[1].finish_time == pure_hit[1].finish_time
        assert offloaded[2].finish_time == pure_hit[2].finish_time
        delta = offloaded[3].finish_time - pure_hit[3].finish_time
        assert delta == pytest.approx(offl_stats.swap_in_seconds, rel=1e-9)

    def test_stats_dict_carries_tier_counters(self):
        pool = UnifiedKVPool.create(num_instances=2, slots_per_instance=100)
        cache = PrefixKVCache(pool, tiers=TieredKVStore())
        stats = cache.stats_dict()
        assert "tier_offloaded_tokens" in stats
        assert "tier_swapped_in_tokens" in stats
        # Without tiers the cache reports the pre-tier shape.
        bare = PrefixKVCache(UnifiedKVPool.create(2, 100))
        assert "tier_offloaded_tokens" not in bare.stats_dict()


class TestChaosInvariants:
    @given(seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=15, deadline=None)
    def test_store_invariants_hold_under_random_op_schedules(self, seed):
        rng = random.Random(seed)
        store = TieredKVStore(
            policy=rng.choice(VICTIM_POLICIES),
            host_capacity_tokens=rng.choice([0, 10, 40]),
            ssd_capacity_tokens=rng.choice([0, 20, 80]),
            bytes_per_token=1e6,
        )
        lines = [tuple(range(base, base + 30)) for base in (0, 1000, 2000)]
        for step in range(60):
            line = rng.choice(lines)
            end = rng.randint(1, len(line))
            if rng.random() < 0.6:
                store.offload(line[:end], rng.randint(0, end - 1), now=float(step))
            else:
                store.fetch(line, rng.randint(0, end), now=float(step))
            store.check_invariants()

    @given(specs=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=8.0,
                      allow_nan=False, allow_infinity=False),
            st.integers(min_value=0, max_value=2),
            st.floats(min_value=0.5, max_value=4.0,
                      allow_nan=False, allow_infinity=False),
        ),
        min_size=1, max_size=4,
    ))
    @settings(max_examples=8, deadline=None)
    def test_fleet_tiers_survive_random_crash_and_steal_schedules(self, specs):
        trace = make_session_trace(rate=4.0, num_sessions=5, seed=22)
        plan = FaultPlan(
            [ReplicaFault(time=t, replica_id=r, downtime_s=d)
             for t, r, d in specs]
        )
        fleet = make_fleet(
            "loongserve", replicas=3, router="affinity", requests=trace,
            num_gpus=4, prefix_cache=True, kv_tiers="lru",
            kv_host_tokens=2_000, kv_ssd_tokens=4_000,
            steal=True, migrate_kv=True, faults=plan,
        )
        result = fleet.run(clone_requests(trace))
        served = [
            r.request_id
            for replica in result.per_replica
            for r in replica.requests + replica.aborted
        ]
        assert sorted(served) == sorted(r.request_id for r in trace)
        assert len(result.finished_requests) == len(trace)
        for handle in fleet.replicas:
            tiers = handle.server.prefix_cache.tiers
            tiers.check_invariants()
            # GPU-side conservation: whatever the pool holds belongs to
            # the prefix cache, with the tiers accounting for the rest.
            assert handle.server.pool.total_used == (
                handle.server.prefix_cache.resident_tokens
            )
