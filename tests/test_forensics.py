"""Latency forensics: exact blame partitions and SLO burn-rate alerts.

The tentpole invariant under test: for every finished request,
:func:`repro.obs.forensics.attribute` produces blame segments that sum
to the measured end-to-end latency *exactly* (within 1e-9) — under any
composition of steal + KV migration + crashes + disaggregation + QoS +
tiered KV, driven here both by hand-built span timelines (unit tests)
and by hypothesis-generated chaos schedules against real fleet runs.

The SLO burn-rate monitor is tested as a pure observer: its multi-window
state machine on synthetic ledgers, and golden-signature inertness on a
real run (arming it changes no finish time).

``REPRO_FORENSICS_REQUESTS`` scales the deterministic acceptance run
(default keeps CI fast; set it to 10000 to reproduce the full
acceptance-scale Mixed fleet run out-of-band).

The ``CI=1`` profile (tests/conftest.py) derandomizes hypothesis.
"""

import math
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.systems import make_fleet
from repro.fleet import CLONE_ID_OFFSET, FaultPlan, ReplicaFault
from repro.obs import (
    Observability,
    SLOHealthMonitor,
    attribute,
    diff_blame,
    render_report,
    verify_partition,
)
from repro.obs.explain import diff_telemetry
from repro.obs.forensics import CATEGORIES, GLYPHS
from repro.obs.tracer import SHADOW_REQUEST_OFFSET, Tracer
from repro.workloads.datasets import MIXED, SHAREGPT
from repro.workloads.trace_gen import clone_requests, make_trace

QOS_MIX = {"interactive": 0.3, "standard": 0.5, "batch": 0.2}

REPLICAS = 3
CHAOS_TRACE = make_trace(
    SHAREGPT, rate=8.0, num_requests=14, seed=33, qos_mix=QOS_MIX
)

fault_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=8.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=REPLICAS - 1),
        st.floats(min_value=0.5, max_value=5.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=0,
    max_size=4,
)


def signature(result):
    return sorted(
        (r.request_id, round(r.finish_time, 12), r.generated)
        for r in result.finished_requests
    )


def assert_exact_partition(obs, result):
    """Every finished request is blamed and its segments partition e2e."""
    report = attribute(obs, requests=result.finished_requests)
    finished = {
        r.request_id
        for r in result.finished_requests
        if r.request_id < SHADOW_REQUEST_OFFSET
    }
    assert set(report.requests) == finished
    assert verify_partition(report) == []
    by_id = {r.request_id: r for r in result.finished_requests}
    for blame in report.requests.values():
        request = by_id[blame.request_id]
        assert abs(
            blame.e2e - (request.finish_time - request.arrival_time)
        ) <= 1e-9
        assert abs(blame.blame_total - blame.e2e) <= 1e-9
        # The roll-up agrees with the chronological pieces.
        assert abs(
            math.fsum(blame.segments.values()) - blame.e2e
        ) <= 1e-9
        assert all(cat in CATEGORIES for cat in blame.segments)
    return report


class TestBlamePartitionChaos:
    @given(specs=fault_specs)
    @settings(max_examples=8, deadline=None)
    def test_partition_exact_under_steal_migrate_crash_disagg(self, specs):
        """The ISSUE acceptance property: random crash schedules against
        the full composed stack (disagg + steal + migrate-kv + QoS +
        tiered KV) never break the exact-partition invariant."""
        plan = FaultPlan(
            [ReplicaFault(time=t, replica_id=r, downtime_s=d)
             for t, r, d in specs]
        )
        fleet = make_fleet(
            "loongserve", replicas=REPLICAS, router="round-robin",
            requests=CHAOS_TRACE, num_gpus=4, prefix_cache=True,
            disagg=1, steal=True, migrate_kv=True, qos=True,
            kv_tiers="lru", faults=plan if plan else None,
        )
        obs = Observability()
        fleet.observe(obs)
        result = fleet.run(clone_requests(CHAOS_TRACE))
        assert result.finished_requests, "chaos run served nothing"
        assert_exact_partition(obs, result)

    def test_acceptance_scale_mixed_fleet(self):
        """Deterministic Mixed-workload acceptance run: congested fleet
        with every subsystem armed, zero partition violations.

        Defaults to a CI-sized request count; set
        ``REPRO_FORENSICS_REQUESTS=10000`` to reproduce the full
        acceptance criterion (same config, ~minutes of wall time).
        """
        n = int(os.environ.get("REPRO_FORENSICS_REQUESTS", "150"))
        trace = make_trace(
            MIXED, rate=40.0, num_requests=n, seed=5, qos_mix=QOS_MIX
        )
        plan = FaultPlan([
            ReplicaFault(time=2.0, replica_id=2, downtime_s=2.0),
            ReplicaFault(time=5.0, replica_id=4, downtime_s=2.0),
        ])
        fleet = make_fleet(
            "loongserve", replicas=5, router="round-robin",
            requests=trace, num_gpus=4, prefix_cache=True,
            disagg=1, steal=True, migrate_kv=True, qos=True,
            kv_tiers="lru", faults=plan,
        )
        obs = Observability()
        fleet.observe(obs)
        result = fleet.run(clone_requests(trace))
        assert len(result.finished_requests) >= n * 0.9
        report = assert_exact_partition(obs, result)
        # The composed run exercises the disagg pipeline and decode
        # split — the categories exist in the fleet-wide totals.
        totals = report.totals()
        assert "disagg_prefill" in totals
        assert "decode_ideal" in totals

    def test_clone_offset_aliases_shadow_offset(self):
        assert CLONE_ID_OFFSET == SHADOW_REQUEST_OFFSET


class TestBlameAttributionUnits:
    def test_basic_lifecycle_split(self):
        tracer = Tracer(enabled=True)
        tracer.transition(1, "queued", 0.0, replica=0)
        tracer.transition(1, "prefill", 1.0, replica=0)
        tracer.transition(1, "decode", 3.0, replica=0)
        tracer.end_span(1, 7.0, ideal_decode_s=2.5)
        report = attribute(tracer)
        blame = report.requests[1]
        assert blame.segments == pytest.approx({
            "queue_wait": 1.0,
            "prefill_compute": 2.0,
            "decode_ideal": 2.5,
            "decode_stretch": 1.5,
        })
        assert blame.e2e == pytest.approx(7.0)
        assert verify_partition(report) == []
        assert blame.dominant() == "decode_ideal"

    def test_swap_debt_splits_out_of_prefill(self):
        tracer = Tracer(enabled=True)
        tracer.transition(2, "queued", 0.0, replica=1)
        tracer.transition(2, "prefill", 1.0, replica=1, swap_s=0.5)
        tracer.transition(2, "decode", 3.0, replica=1)
        tracer.end_span(2, 4.0, ideal_decode_s=1.0)
        blame = attribute(tracer).requests[2]
        assert blame.segments["tier_swap_in"] == pytest.approx(0.5)
        assert blame.segments["prefill_compute"] == pytest.approx(1.5)

    def test_gaps_land_in_unattributed(self):
        tracer = Tracer(enabled=True)
        tracer.transition(3, "queued", 0.0, replica=0)
        tracer.end_span(3, 1.0)
        tracer.transition(3, "decode", 2.0, replica=0)
        tracer.end_span(3, 3.0)
        blame = attribute(tracer).requests[3]
        assert blame.segments["unattributed"] == pytest.approx(1.0)
        assert verify_partition(attribute(tracer)) == []

    def test_request_window_is_authoritative(self):
        """A finish time past the last span extends the partition with
        unattributed tail instead of silently shrinking e2e."""

        class _Req:
            request_id = 4
            arrival_time = 0.0
            finish_time = 5.0
            effective_qos = "interactive"
            session_id = None

        tracer = Tracer(enabled=True)
        tracer.transition(4, "queued", 0.0, replica=0)
        tracer.transition(4, "decode", 1.0, replica=0)
        tracer.end_span(4, 4.0)
        report = attribute(tracer, requests=[_Req()])
        blame = report.requests[4]
        assert blame.e2e == pytest.approx(5.0)
        assert blame.segments["unattributed"] == pytest.approx(1.0)
        assert blame.qos == "interactive"
        assert verify_partition(report) == []

    def test_disagg_stages_and_clone_filtering(self):
        tracer = Tracer(enabled=True)
        tracer.transition(5, "disagg_handoff", 0.0, replica=0, stage="prefill")
        tracer.transition(5, "disagg_handoff", 1.0, replica=2, stage="transfer")
        tracer.transition(5, "decode", 1.5, replica=2)
        tracer.end_span(5, 2.5)
        tracer.transition(5 + SHADOW_REQUEST_OFFSET, "queued", 0.0, replica=0)
        tracer.end_span(5 + SHADOW_REQUEST_OFFSET, 1.0)
        report = attribute(tracer)
        assert set(report.requests) == {5}
        blame = report.requests[5]
        assert blame.segments["disagg_prefill"] == pytest.approx(1.0)
        assert blame.segments["disagg_transfer"] == pytest.approx(0.5)

    def test_open_spans_excluded(self):
        tracer = Tracer(enabled=True)
        tracer.transition(6, "queued", 0.0, replica=0)
        tracer.finalize(9.0)
        assert 6 not in attribute(tracer).requests


class TestForensicsRendering:
    def _report(self):
        tracer = Tracer(enabled=True)
        for rid, stretch in ((1, 1.0), (2, 4.0)):
            tracer.transition(rid, "queued", 0.0, replica=0, qos="standard")
            tracer.transition(rid, "prefill", 1.0, replica=0)
            tracer.transition(rid, "decode", 2.0, replica=0)
            tracer.end_span(rid, 2.0 + 1.0 + stretch, ideal_decode_s=1.0)
        return attribute(tracer)

    def test_render_report_sections(self):
        text = render_report(self._report(), top=2)
        assert "blame by category" in text
        assert "slowest 2 requests" in text
        assert "legend:" in text
        for category in ("queue_wait", "decode_stretch"):
            assert category in text

    def test_timeline_width_and_glyphs(self):
        blame = self._report().requests[2]
        bar = blame.timeline(width=40)
        assert len(bar) == 40
        assert set(bar) <= set(GLYPHS.values())
        # decode stretch dominates request 2's bar.
        assert bar.count(GLYPHS["decode_stretch"]) > bar.count(GLYPHS["queue_wait"])

    def test_diff_blame_attributes_regression(self):
        base, new = self._report(), self._report()
        # Regress request 1 in the new run by stretching decode.
        tracer = Tracer(enabled=True)
        tracer.transition(1, "queued", 0.0, replica=0)
        tracer.transition(1, "prefill", 1.0, replica=0)
        tracer.transition(1, "decode", 2.0, replica=0)
        tracer.end_span(1, 9.0, ideal_decode_s=1.0)
        new.requests[1] = attribute(tracer).requests[1]
        text = diff_blame(base, new, "A", "B", top=3)
        assert "blame diff" in text
        assert "#1" in text
        assert "biggest mover: decode_stretch" in text

    def test_diff_telemetry_histogram_section(self):
        """Histogram-typed metrics diff from snapshots (count/mean/tails),
        not from re-averaged running-mean series points."""
        snap = {"bounds": (1.0, 2.0), "counts": [1, 1, 0], "total": 2.4}
        a = {
            "samples": {"fleet.ttft": [(1.0, 1.2)], "g": [(1.0, 3.0)]},
            "histograms": {"fleet.ttft": dict(snap)},
        }
        b = {
            "samples": {"fleet.ttft": [(1.0, 9.9)], "g": [(1.0, 4.0)]},
            "histograms": {
                "fleet.ttft": {
                    "bounds": (1.0, 2.0), "counts": [0, 2, 2], "total": 8.0,
                }
            },
        }
        text = diff_telemetry(a, b)
        assert "distribution" in text
        assert "p99" in text
        scalar_section = text.split("distribution")[0]
        assert "fleet.ttft" not in scalar_section  # no double-reporting
        assert "g" in scalar_section


class _FakeRequest:
    def __init__(self, finish_time, deadline, qos="default"):
        self.finish_time = finish_time
        self.deadline = deadline
        self.effective_qos = qos


class _FakeServer:
    def __init__(self):
        self.finished = []
        self.aborted = []


class TestSLOHealthMonitor:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLOHealthMonitor(windows=(5.0, 2.0))
        with pytest.raises(ValueError):
            SLOHealthMonitor(target=1.0)
        with pytest.raises(ValueError):
            SLOHealthMonitor(burn_threshold=0.0)
        with pytest.raises(ValueError):
            SLOHealthMonitor(hysteresis_up=0)

    def test_alert_fires_after_hysteresis_and_resolves(self):
        monitor = SLOHealthMonitor(
            windows=(5.0, 30.0), target=0.9, burn_threshold=2.0,
            hysteresis_up=2, hysteresis_down=3,
        )
        tracer = Tracer(enabled=True)
        server = _FakeServer()
        # Five hard deadline misses land in both windows.
        server.finished = [_FakeRequest(1.0, 0.5) for _ in range(5)]
        monitor.observe([server], 1.0, tracer=tracer)
        assert monitor.state("default") == "ok"  # one breaching tick
        monitor.observe([server], 2.0, tracer=tracer)
        assert monitor.state("default") == "firing"
        alerts = tracer.of_kind("slo_alert")
        assert len(alerts) == 1
        assert alerts[0].payload["state"] == "firing"
        assert alerts[0].payload["cls"] == "default"
        assert alerts[0].payload["burn_fast"] >= 2.0
        assert alerts[0].component == "health"
        # The fast window empties once time moves past it; three clear
        # ticks resolve the alert.
        for tick in (10.0, 11.0):
            monitor.observe([server], tick, tracer=tracer)
            assert monitor.state("default") == "firing"
        monitor.observe([server], 12.0, tracer=tracer)
        assert monitor.state("default") == "ok"
        alerts = tracer.of_kind("slo_alert")
        assert [a.payload["state"] for a in alerts] == ["firing", "resolved"]

    def test_single_noisy_tick_never_flaps(self):
        monitor = SLOHealthMonitor(hysteresis_up=2)
        tracer = Tracer(enabled=True)
        server = _FakeServer()
        server.finished = [_FakeRequest(1.0, 0.5) for _ in range(5)]
        monitor.observe([server], 1.0, tracer=tracer)
        # The breach clears before the second tick: no alert ever fires.
        server.finished = server.finished + [
            _FakeRequest(1.5, 9.0) for _ in range(50)
        ]
        monitor.observe([server], 2.0, tracer=tracer)
        monitor.observe([server], 3.0, tracer=tracer)
        assert monitor.state("default") == "ok"
        assert tracer.of_kind("slo_alert") == []

    def test_aborts_count_as_misses_and_no_deadline_ignored(self):
        monitor = SLOHealthMonitor(hysteresis_up=1)
        tracer = Tracer(enabled=True)
        server = _FakeServer()
        server.aborted = [_FakeRequest(None, 1.0, qos="batch") for _ in range(4)]
        server.finished = [_FakeRequest(1.0, None) for _ in range(10)]
        monitor.observe([server], 2.0, tracer=tracer)
        assert monitor.state("batch") == "firing"
        # Deadline-less finishes contributed no class at all.
        assert monitor.state("default") == "ok"
        assert monitor._events.keys() == {"batch"}

    def test_per_class_isolation(self):
        monitor = SLOHealthMonitor(hysteresis_up=1)
        server = _FakeServer()
        server.finished = (
            [_FakeRequest(1.0, 0.5, qos="batch") for _ in range(5)]
            + [_FakeRequest(1.0, 2.0, qos="interactive") for _ in range(5)]
        )
        monitor.observe([server], 1.5, tracer=Tracer(enabled=True))
        assert monitor.state("batch") == "firing"
        assert monitor.state("interactive") == "ok"

    def test_gauges_published(self):
        from repro.obs.telemetry import MetricsRegistry

        monitor = SLOHealthMonitor()
        metrics = MetricsRegistry()
        server = _FakeServer()
        server.finished = [
            _FakeRequest(1.0, 2.0), _FakeRequest(1.2, 0.5),
        ]
        monitor.observe([server], 1.5, metrics=metrics)
        assert metrics.gauge("slo.attainment.default").value == pytest.approx(0.5)
        assert metrics.gauge("slo.burn_fast.default").value == pytest.approx(5.0)


class TestHealthInertness:
    def test_monitor_changes_no_finish_time(self):
        """Golden-signature guarantee: the armed burn-rate monitor is a
        pure observer — same seeds, identical outcomes."""
        trace = make_trace(
            SHAREGPT, rate=12.0, num_requests=24, seed=7, qos_mix=QOS_MIX
        )
        signatures = []
        for with_health in (False, True):
            fleet = make_fleet(
                "loongserve", replicas=2, router="round-robin",
                requests=trace, num_gpus=4, qos=True, steal=True,
            )
            obs = Observability()
            if with_health:
                obs.enable_health()
            fleet.observe(obs)
            result = fleet.run(clone_requests(trace))
            signatures.append(signature(result))
            if with_health:
                # The monitor actually saw deadline outcomes.
                assert any(
                    name.startswith("slo.") for name in obs.metrics.names()
                )
        assert signatures[0] == signatures[1]
