"""Cross-system integration properties.

These tests encode the paper's qualitative end-to-end claims as
assertions over full serving runs on shared traces.
"""

import pytest

from repro.experiments.systems import make_system
from repro.metrics.latency import summarize_latency
from repro.metrics.summary import throughput_tokens_per_s
from repro.workloads.datasets import LEVAL, MIXED, SHAREGPT
from repro.workloads.trace_gen import clone_requests, make_trace

ALL_SYSTEMS = [
    "loongserve", "vllm", "splitfuse", "distserve", "static-sp", "replicated-tp2",
]


@pytest.fixture(scope="module")
def mixed_results():
    trace = make_trace(MIXED, rate=0.8, num_requests=50, seed=31)
    results = {}
    for name in ALL_SYSTEMS:
        system = make_system(name, requests=trace)
        results[name] = system.run(clone_requests(trace))
    return results


class TestMixedWorkloadOrdering:
    def test_every_system_serves_everything_it_admits(self, mixed_results):
        for name, result in mixed_results.items():
            assert result.completed_fraction == 1.0, name

    def test_loongserve_beats_shared_engine_systems(self, mixed_results):
        """LoongServe leads the single-engine and disaggregated systems on
        Mixed per-token latency.  (Replication is excluded here: with the
        workload's lengths capped below one replica's pool it degenerates
        to four independent fast queues — its real weakness,
        fragmentation, is asserted in TestFragmentationStory.)"""
        per_token = {
            name: summarize_latency(result).per_token
            for name, result in mixed_results.items()
        }
        loong = per_token["loongserve"]
        for name in ("vllm", "splitfuse", "distserve", "static-sp"):
            assert loong <= per_token[name] * 1.05, (
                f"{name} beat LoongServe on Mixed"
            )

    def test_loongserve_output_latency_protected(self, mixed_results):
        """Decode isolation: output latency better than the interference-
        prone systems (vLLM, static hybrid)."""
        out = {
            name: summarize_latency(result).output_token
            for name, result in mixed_results.items()
        }
        assert out["loongserve"] <= out["vllm"]
        assert out["loongserve"] <= out["static-sp"]

    def test_throughput_positive_everywhere(self, mixed_results):
        for name, result in mixed_results.items():
            assert throughput_tokens_per_s(result) > 0, name


class TestInterferenceStory:
    """The L-Eval interference claim (§7.2): long prefills stall vLLM's
    decoding but not LoongServe's."""

    @pytest.fixture(scope="class")
    def leval_results(self):
        trace = make_trace(LEVAL, rate=2.5, num_requests=40, seed=32)
        return {
            name: make_system(name, requests=trace).run(clone_requests(trace))
            for name in ("loongserve", "vllm")
        }

    def test_output_latency_gap(self, leval_results):
        loong = summarize_latency(leval_results["loongserve"]).output_token
        vllm = summarize_latency(leval_results["vllm"]).output_token
        assert loong < vllm

    def test_loongserve_overlaps_phases(self, leval_results):
        from repro.types import Phase

        stats = leval_results["loongserve"].iteration_stats
        prefill_windows = [
            (s.start_time, s.start_time + s.duration)
            for s in stats if s.phase == Phase.PREFILL
        ]
        decode_starts = [s.start_time for s in stats if s.phase == Phase.DECODE]
        assert any(lo < t < hi for t in decode_starts for lo, hi in prefill_windows)


class TestFragmentationStory:
    """Figure 4 end to end: only locality-free systems serve requests
    larger than one instance/replica."""

    def test_unified_pool_serves_replication_rejects(self):
        from repro.config import default_config

        per_instance = default_config().kv_slots_per_instance
        big = make_trace(SHAREGPT, rate=1.0, num_requests=1, seed=33)
        big[0].input_len = int(1.4 * per_instance)

        loong = make_system("loongserve").run(clone_requests(big))
        assert loong.completed_fraction == 1.0
        assert not loong.aborted

        replicated = make_system("replicated-tp2").run(clone_requests(big))
        assert len(replicated.aborted) == 1


class TestDeterminism:
    @pytest.mark.parametrize("name", ["loongserve", "vllm", "distserve"])
    def test_same_trace_same_outcome(self, name):
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=25, seed=34)
        a = make_system(name, requests=trace).run(clone_requests(trace))
        b = make_system(name, requests=trace).run(clone_requests(trace))
        lat_a = sorted(r.normalized_latency for r in a.finished_requests)
        lat_b = sorted(r.normalized_latency for r in b.finished_requests)
        assert lat_a == pytest.approx(lat_b)
