"""Sharded event calendars stay bit-identical to the single heap.

The sharded engine (``Simulator.create_shard`` + ``ShardClock``) promises
the exact single-heap pop order — same ``(time, priority, seq)``
tie-breaks, same weak/cancelled handling, same final clock — while each
replica's events sift in a heap of their own.  This module pins that
promise three ways: unit tests on the coordination machinery, a
hypothesis differential harness replaying random programs on both
layouts, and golden-signature gates on elastic fleets (observability on
and off).
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import ShardClock, Simulator
from repro.workloads.datasets import MIXED
from repro.workloads.trace_gen import clone_requests, make_trace


class TestShardClock:
    def test_create_shard_returns_clock_facade(self):
        sim = Simulator()
        clock = sim.create_shard()
        assert isinstance(clock, ShardClock)
        assert clock.shard_id == 1
        assert clock.now == sim.now
        assert sim.create_shard().shard_id == 2

    def test_scheduling_in_the_past_raises_like_the_simulator(self):
        sim = Simulator()
        clock = sim.create_shard()
        sim.call_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="cannot schedule"):
            clock.call_at(0.5, lambda: None)
        with pytest.raises(ValueError, match="non-negative"):
            clock.call_after(-1.0, lambda: None)

    def test_timer_cancellation_routes_to_the_owning_shard(self):
        sim = Simulator()
        clock = sim.create_shard()
        log = []
        timer = clock.call_at(1.0, lambda: log.append("dead"))
        clock.call_at(2.0, lambda: log.append("live"))
        timer.cancel()
        sim.run()
        assert log == ["live"]
        assert sim.now == 2.0

    def test_next_event_time_is_the_replica_local_horizon(self):
        sim = Simulator()
        clock_a = sim.create_shard()
        clock_b = sim.create_shard()
        sim.call_at(5.0, lambda: None)      # control plane (shard 0)
        clock_a.call_at(3.0, lambda: None)  # own work
        clock_b.call_at(1.0, lambda: None)  # another replica's work
        # A's horizon sees its own head and the control plane's — not B's:
        # B can only affect A through a shard-0 event.
        assert clock_a.next_event_time() == 3.0
        assert clock_b.next_event_time() == 1.0
        assert sim.next_event_time() == 1.0

    def test_stop_from_a_shard_action_halts_the_run(self):
        sim = Simulator()
        clock = sim.create_shard()
        log = []
        clock.call_at(1.0, lambda: (log.append(1), clock.stop()))
        clock.call_at(2.0, lambda: log.append(2))
        sim.run()
        assert log == [1]
        assert sim.now == 1.0


class TestShardedOrdering:
    def test_cross_shard_events_pop_in_global_time_order(self):
        sim = Simulator()
        clocks = [sim.create_shard() for _ in range(3)]
        log = []
        clocks[2].call_at(3.0, lambda: log.append("c"))
        clocks[0].call_at(1.0, lambda: log.append("a"))
        sim.call_at(4.0, lambda: log.append("d"))
        clocks[1].call_at(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c", "d"]

    def test_timestamp_ties_break_by_priority_then_program_order(self):
        sim = Simulator()
        clocks = [sim.create_shard() for _ in range(2)]
        log = []
        clocks[1].call_at(1.0, lambda: log.append("late-priority"), priority=9)
        clocks[0].call_at(1.0, lambda: log.append("first"))
        sim.call_at(1.0, lambda: log.append("second"))
        clocks[0].call_at(1.0, lambda: log.append("third"))
        sim.run()
        # Shared seq counter: insertion order breaks the tie exactly as
        # one heap would, and priority sorts after time.
        assert log == ["first", "second", "third", "late-priority"]

    def test_actions_can_schedule_across_shards_mid_run(self):
        sim = Simulator()
        clock_a = sim.create_shard()
        clock_b = sim.create_shard()
        log = []

        def first():
            log.append("first")
            clock_b.call_after(0.5, lambda: log.append("nested-b"))
            sim.call_after(1.0, lambda: log.append("nested-0"))

        clock_a.call_at(1.0, first)
        clock_b.call_at(3.0, lambda: log.append("last"))
        sim.run()
        assert log == ["first", "nested-b", "nested-0", "last"]

    def test_cancelled_shard_head_does_not_block_other_shards(self):
        sim = Simulator()
        clock_a = sim.create_shard()
        clock_b = sim.create_shard()
        log = []
        dead = clock_a.call_at(1.0, lambda: log.append("dead"))
        clock_b.call_at(2.0, lambda: log.append("b"))
        clock_a.call_at(3.0, lambda: log.append("a"))
        dead.cancel()
        sim.run()
        assert log == ["b", "a"]
        assert sim.now == 3.0

    def test_trailing_weak_event_is_discarded_across_shards(self):
        sim = Simulator()
        clock = sim.create_shard()
        log = []
        clock.call_at(1.0, lambda: log.append("real"))
        clock.call_at(5.0, lambda: log.append("weak"), weak=True)
        sim.run()
        assert log == ["real"]
        assert sim.now == 1.0

    def test_weak_event_runs_when_another_shard_has_live_work(self):
        sim = Simulator()
        clock_a = sim.create_shard()
        clock_b = sim.create_shard()
        log = []
        clock_a.call_at(1.0, lambda: log.append("weak"), weak=True)
        clock_b.call_at(2.0, lambda: log.append("real"))
        sim.run()
        assert log == ["weak", "real"]

    def test_run_until_leaves_later_shard_events_queued(self):
        sim = Simulator()
        clock = sim.create_shard()
        log = []
        clock.call_at(1.0, lambda: log.append(1))
        clock.call_at(5.0, lambda: log.append(5))
        assert sim.run(until=2.0) == 2.0
        assert log == [1]
        assert sim.run() == 5.0
        assert log == [1, 5]

    def test_max_events_budget_counts_across_shards(self):
        sim = Simulator()
        clocks = [sim.create_shard() for _ in range(2)]
        log = []
        for i in range(6):
            clocks[i % 2].call_at(float(i), lambda i=i: log.append(i))
        sim.run(max_events=4)
        assert log == [0, 1, 2, 3]


# -- differential harness: random programs, both layouts -------------------

_program = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),          # target shard
        st.floats(min_value=0.0, max_value=10.0),       # event time
        st.integers(min_value=0, max_value=2),          # priority
        st.booleans(),                                  # cancel after scheduling
        st.booleans(),                                  # weak
        st.integers(min_value=0, max_value=2),          # children to spawn
    ),
    min_size=1,
    max_size=30,
)


def _replay(program, shards: int):
    """Run ``program`` on a simulator with ``shards`` extra calendars
    (0 = plain single heap) and return the execution log + final clock."""
    sim = Simulator()
    clocks = [sim] + [sim.create_shard() for _ in range(shards)]
    log = []

    def schedule(index, target, time, priority, cancel, weak, children):
        clock = clocks[target % len(clocks)]

        def action():
            log.append((index, sim.now))
            for child in range(children):
                child_clock = clocks[(target + child + 1) % len(clocks)]
                child_clock.call_after(
                    0.25 * (child + 1),
                    lambda: log.append((f"{index}.{child}", sim.now)),
                    priority=child,
                )

        timer = clock.call_at(time, action, priority=priority, weak=weak)
        if cancel:
            timer.cancel()

    for index, step in enumerate(program):
        schedule(index, *step)
    final = sim.run()
    return log, final, sim.events_processed


class TestDifferential:
    @settings(max_examples=200, deadline=None)
    @given(program=_program)
    def test_sharded_replays_the_single_heap_exactly(self, program):
        single = _replay(program, shards=0)
        for shards in (1, 3):
            assert _replay(program, shards) == single

    def test_run_until_then_resume_matches(self):
        program = [
            (s % 4, float(t), t % 3, False, False, 1)
            for s, t in enumerate(range(10))
        ]

        def split_run(shards):
            sim = Simulator()
            clocks = [sim] + [sim.create_shard() for _ in range(shards)]
            log = []
            for index, (target, time, priority, _, _, _) in enumerate(program):
                clocks[target % len(clocks)].call_at(
                    time, lambda i=index: log.append((i, sim.now)),
                    priority=priority,
                )
            sim.run(until=4.5)
            mid = list(log)
            sim.run()
            return mid, log, sim.now

        assert split_run(3) == split_run(0)


# -- golden gates: elastic fleet, sharded vs shared heap -------------------


def _fleet_signature(requests):
    """Outcome digest; request ids excluded (the global id counter moves
    between trace rebuilds, the workload tuple + timestamps pin the run)."""
    rows = sorted(
        (r.input_len, r.output_len, round(r.arrival_time, 9),
         round(r.prefill_end, 9) if r.prefill_end is not None else -1.0,
         round(r.finish_time, 9) if r.finish_time is not None else -1.0,
         r.generated, r.preemptions)
        for r in requests
    )
    return hashlib.md5(repr(rows).encode()).hexdigest()


def _run_fleet(sharded: bool, observe: bool):
    from repro.experiments.systems import make_fleet

    fleet = make_fleet(
        "loongserve", replicas=4, router="least-kv", num_gpus=4,
        autoscale=True, steal=True, sharded=sharded,
    )
    obs = None
    if observe:
        from repro.obs import Observability

        obs = Observability()
        fleet.observe(obs)
    trace = clone_requests(make_trace(MIXED, rate=4.0, num_requests=60, seed=7))
    result = fleet.run(trace)
    return result, fleet, obs


class TestFleetGoldenGates:
    def test_elastic_fleet_bit_identical_obs_off(self):
        unsharded, uf, _ = _run_fleet(sharded=False, observe=False)
        sharded, sf, _ = _run_fleet(sharded=True, observe=False)
        assert _fleet_signature(sharded.requests) == _fleet_signature(
            unsharded.requests
        )
        assert sharded.makespan == unsharded.makespan
        assert sf.last_sim.events_processed == uf.last_sim.events_processed
        assert sf.last_sim._multi and not uf.last_sim._multi

    def test_elastic_fleet_bit_identical_obs_on(self):
        unsharded, _, uobs = _run_fleet(sharded=False, observe=True)
        sharded, _, sobs = _run_fleet(sharded=True, observe=True)
        assert _fleet_signature(sharded.requests) == _fleet_signature(
            unsharded.requests
        )
        assert sharded.makespan == unsharded.makespan
        # Identical event sequences observe identically.
        assert len(sobs.tracer.spans) == len(uobs.tracer.spans)
        assert len(sobs.tracer.records) == len(uobs.tracer.records)
        assert len(sobs.metrics.sample_times) == len(uobs.metrics.sample_times)

    def test_observability_never_perturbs_the_sharded_fleet(self):
        plain, _, _ = _run_fleet(sharded=True, observe=False)
        observed, _, _ = _run_fleet(sharded=True, observe=True)
        assert _fleet_signature(observed.requests) == _fleet_signature(
            plain.requests
        )

    def test_single_server_keeps_the_single_heap_fast_path(self):
        from repro.config import default_config
        from repro.core.server import LoongServeServer

        server = LoongServeServer(default_config())
        server.run(clone_requests(make_trace(MIXED, rate=4.0, num_requests=10, seed=7)))
        assert not server.sim._multi
