"""End-to-end preemption-by-recomputation coverage.

A deliberately tiny KV pool forces the decode phase out of memory, so
the eviction path (drop KV, requeue, re-prefill, finish) is exercised
for real — including the conservative dispatch estimate that tries to
avoid it (§5.1).
"""

from dataclasses import replace

from repro.config import default_config
from repro.core.server import LoongServeServer
from repro.types import RequestState
from tests.conftest import make_request


def tiny_pool_config(fraction: float = 0.004):
    """Shrink KV memory so a handful of requests exhausts an instance."""
    config = default_config()
    return replace(config, kv_memory_fraction=fraction)


class TestPreemptionPath:
    def test_overcommitted_decode_still_finishes(self):
        """Requests that under-declare max_tokens defeat the eviction-
        avoidance estimate, forcing real preemptions — everything must
        still complete via recomputation."""
        config = tiny_pool_config()
        server = LoongServeServer(config)
        slots = config.kv_slots_per_instance
        requests = [
            make_request(
                input_len=max(1, slots // 3),
                output_len=slots // 2,  # grows far beyond the declared cap
                arrival=0.01 * i,
                max_tokens=4,  # lie to the scheduler
            )
            for i in range(6)
        ]
        result = server.run(requests)
        assert len(result.finished_requests) == 6
        assert server.pool.total_used == 0
        assert sum(r.preemptions for r in requests) > 0

    def test_honest_max_tokens_avoids_preemption(self):
        """With truthful caps the §5.1 estimate prevents evictions."""
        config = tiny_pool_config()
        server = LoongServeServer(config)
        slots = config.kv_slots_per_instance
        requests = [
            make_request(
                input_len=max(1, slots // 3),
                output_len=slots // 2,
                arrival=0.01 * i,
            )
            for i in range(6)
        ]
        result = server.run(requests)
        assert len(result.finished_requests) == 6
        assert sum(r.preemptions for r in requests) == 0

    def test_preempted_request_recomputes_full_prefix(self):
        config = tiny_pool_config()
        server = LoongServeServer(config)
        slots = config.kv_slots_per_instance
        victim_pool = [
            make_request(
                input_len=max(1, slots // 3),
                output_len=slots // 2,
                arrival=0.01 * i,
                max_tokens=2,
            )
            for i in range(8)
        ]
        result = server.run(victim_pool)
        preempted = [r for r in victim_pool if r.preemptions > 0]
        assert preempted, "scenario must actually trigger preemption"
        for request in preempted:
            assert request.state == RequestState.FINISHED
            assert request.generated == request.output_len

    def test_baseline_preemption_also_recovers(self):
        """The vLLM-style engine's preempt-by-recompute path."""
        from repro.baselines.base import EngineServer
        from repro.baselines.vllm import PrefillPriorityPolicy

        config = default_config(tensor_parallel=8)
        engine = EngineServer(
            config=config,
            policy=PrefillPriorityPolicy(),
            instance_ids=[0],
            kv_slots=2_000,
            name="tiny-vllm",
        )
        requests = [
            make_request(input_len=400, output_len=700, arrival=0.01 * i,
                         max_tokens=5)
            for i in range(4)
        ]
        result = engine.run(requests)
        assert len(result.finished_requests) == 4
        assert engine.pool.used == 0
