"""Tests for failure injection: fault plans, the server crash surface,
replica handle lifecycle, controller failover, warm-up-aware
autoscaling, the faults-disabled golden gate, and the CLI flags."""

import hashlib

import pytest

from repro.costmodel.latency import ReplicaLifecycleModel
from repro.experiments.systems import make_fleet, make_system
from repro.fleet import (
    AutoscalerConfig,
    ClusterPolicy,
    FaultInjector,
    FaultPlan,
    FleetController,
    QueueDepthAutoscaler,
    ReplicaFault,
    ReplicaHandle,
    StealConfig,
    WorkStealer,
    make_router,
    reset_for_failover,
)
from repro.metrics.fleet import ElasticStats
from repro.sessions import make_session_trace
from repro.sim.engine import Simulator
from repro.types import RequestState
from repro.workloads.datasets import MIXED, SHAREGPT
from repro.workloads.trace_gen import clone_requests, make_trace
from tests.conftest import make_request


class TestFaultPlan:
    def test_fault_validation(self):
        with pytest.raises(ValueError):
            ReplicaFault(time=-1.0, replica_id=0)
        with pytest.raises(ValueError):
            ReplicaFault(time=1.0, replica_id=-1)
        with pytest.raises(ValueError):
            ReplicaFault(time=1.0, replica_id=0, downtime_s=0.0)
        # Non-finite times would poison the simulator's event heap.
        with pytest.raises(ValueError):
            ReplicaFault(time=float("nan"), replica_id=0)
        with pytest.raises(ValueError):
            ReplicaFault(time=float("inf"), replica_id=0)
        with pytest.raises(ValueError):
            ReplicaFault(time=1.0, replica_id=0, downtime_s=float("inf"))

    def test_plan_sorts_and_reports(self):
        plan = FaultPlan.scripted((9.0, 1), (3.0, 2), (3.0, 0))
        assert [(f.time, f.replica_id) for f in plan] == [
            (3.0, 0), (3.0, 2), (9.0, 1),
        ]
        assert len(plan) == 3 and plan
        assert plan.max_replica_id == 2
        empty = FaultPlan()
        assert not empty and len(empty) == 0
        assert empty.max_replica_id == -1

    def test_poisson_is_deterministic_in_seed(self):
        a = FaultPlan.poisson(num_replicas=4, horizon_s=300.0, mtbf_s=60.0, seed=7)
        b = FaultPlan.poisson(num_replicas=4, horizon_s=300.0, mtbf_s=60.0, seed=7)
        c = FaultPlan.poisson(num_replicas=4, horizon_s=300.0, mtbf_s=60.0, seed=8)
        assert a.faults == b.faults
        assert a.faults != c.faults
        assert a  # a 300s horizon at 60s MTBF essentially always crashes
        assert all(0 <= f.time < 300.0 for f in a)
        assert all(0 <= f.replica_id < 4 for f in a)

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.poisson(num_replicas=0, horizon_s=10.0, mtbf_s=5.0)
        with pytest.raises(ValueError):
            FaultPlan.poisson(num_replicas=1, horizon_s=-1.0, mtbf_s=5.0)
        with pytest.raises(ValueError):
            FaultPlan.poisson(num_replicas=1, horizon_s=10.0, mtbf_s=0.0)

    def test_injector_reset_clears_ledger(self):
        injector = FaultInjector(plan=FaultPlan.scripted((1.0, 0)))
        injector.note_injected(injector.plan.faults[0])
        injector.note_skipped(injector.plan.faults[0])
        injector.reset()
        assert injector.injected == [] and injector.skipped == []


class TestResetForFailover:
    def test_queued_request_charges_nothing(self):
        request = make_request(input_len=500, output_len=10)
        assert reset_for_failover(request) == 0
        assert request.state == RequestState.PENDING
        assert request.preemptions == 0

    def test_inflight_request_charges_full_recompute(self):
        request = make_request(input_len=500, output_len=10)
        request.state = RequestState.DECODING
        request.generated = 4
        request.cached_prefix_len = 100
        assert reset_for_failover(request) == 504
        assert request.state == RequestState.PENDING
        assert request.generated == 0
        assert request.cached_prefix_len == 0
        assert request.preemptions == 1


class TestServerCrash:
    def test_crash_orphans_unfinished_and_wipes_kv(self):
        server = make_system("loongserve")
        trace = make_trace(SHAREGPT, rate=50.0, num_requests=8, seed=3)
        sim = Simulator()
        server.use_simulator(sim)
        for request in trace:
            server.submit(request)
        sim.run(until=1.0)  # mid-flight: some prefilled, none finished all
        assert server.pool.total_used > 0
        orphans, lost = server.crash()
        finished_before = len(server.finished)
        assert lost > 0
        assert server.pool.total_used == 0
        assert not server.pending and not server.decode_batches
        assert {r.request_id for r in orphans} == {
            r.request_id for r in trace if not r.finished
        }
        assert all(not r.finished for r in orphans)
        # Stale completions from before the crash must be dead: draining
        # the queue neither serves the orphans nor corrupts anything.
        sim.run_until_idle()
        assert len(server.finished) == finished_before
        assert server.pool.total_used == 0

    def test_crash_preserves_finished_history_and_cache_ledger(self):
        server = make_system("loongserve", prefix_cache=True)
        trace = make_session_trace(rate=5.0, num_sessions=3, seed=14)
        sim = Simulator()
        server.use_simulator(sim)
        for request in trace:
            server.submit(request)
        sim.run_until_idle()
        finished = len(server.finished)
        stats_before = server.prefix_cache.stats
        assert finished == len(trace)
        assert server.prefix_cache.resident_tokens > 0
        orphans, lost = server.crash()
        assert orphans == []  # everything had finished
        assert lost > 0  # the cache extents died with the pool
        assert server.prefix_cache.resident_tokens == 0
        assert server.prefix_cache.stats is stats_before  # ledger survives
        assert len(server.finished) == finished

    def test_crashed_server_serves_fresh_work(self):
        server = make_system("loongserve")
        sim = Simulator()
        server.use_simulator(sim)
        server.submit(make_request(input_len=100, output_len=4))
        sim.run(until=0.001)
        server.crash()
        fresh = make_request(input_len=100, output_len=4)
        server.submit(fresh)
        sim.run_until_idle()
        assert fresh.finished


class TestReplicaHandleCrash:
    def test_crash_prunes_routed_and_goes_offline(self):
        handle = ReplicaHandle(0, make_system("loongserve"))
        handle.prepare(Simulator())
        request = make_request()
        handle.submit(request)
        free_before = handle.kv_free()
        orphans, _ = handle.crash()
        assert orphans == [request]
        assert handle.routed == []
        assert handle.crashed and not handle.online and not handle.placeable
        assert handle.kv_free() == free_before  # probes see the fresh pool

    def test_warmup_lifecycle(self):
        handle = ReplicaHandle(0, make_system("loongserve"))
        handle.prepare(Simulator())
        handle.crash()
        handle.begin_warmup()
        assert handle.warming and not handle.online and not handle.placeable
        handle.complete_warmup()
        assert handle.available and handle.placeable
        assert not handle.crashed and not handle.warming

    def test_prepare_clears_fault_state(self):
        handle = ReplicaHandle(0, make_system("loongserve"))
        handle.prepare(Simulator())
        handle.crash()
        handle.prepare(Simulator())
        assert handle.available and not handle.crashed and not handle.warming

    def test_uncrashable_server_raises(self):
        handle = ReplicaHandle(0, make_system("vllm"))
        handle.prepare(Simulator())
        with pytest.raises(TypeError, match="failure injection"):
            handle.crash()

    def test_make_fleet_rejects_uncrashable_systems(self):
        with pytest.raises(ValueError, match="crashable"):
            make_fleet("vllm", replicas=2, faults=FaultPlan.scripted((1.0, 0)))

    def test_make_fleet_rejects_out_of_range_fault_targets(self):
        with pytest.raises(ValueError, match="only 2 replicas"):
            make_fleet("loongserve", replicas=2,
                       faults=FaultPlan.scripted((1.0, 5)))


class TestControllerFailover:
    def _run_faulted(self, faults, *, trace=None, replicas=3, **kwargs):
        trace = trace if trace is not None else make_trace(
            MIXED, rate=6.0, num_requests=24, seed=7
        )
        fleet = make_fleet(
            "loongserve", replicas=replicas, router="round-robin",
            requests=trace, faults=faults, **kwargs,
        )
        return trace, fleet.run(clone_requests(trace))

    def test_no_request_lost_or_duplicated(self):
        trace, result = self._run_faulted(FaultPlan.scripted((4.0, 0)))
        served = [
            r.request_id
            for replica in result.per_replica
            for r in replica.requests + replica.aborted
        ]
        assert sorted(served) == sorted(r.request_id for r in trace)
        assert len(set(served)) == len(served)
        assert len(result.finished_requests) == len(trace)

    def test_crash_ledger_and_availability_timeline(self):
        _, result = self._run_faulted(
            FaultPlan.scripted((4.0, 0), downtime_s=5.0)
        )
        elastic = result.elastic
        assert elastic.crashes == 1
        assert elastic.lost_kv_tokens > 0
        assert elastic.failovers > 0
        actions = [a for _, a, _ in elastic.scaling_log]
        assert "crash" in actions and "recover" in actions and "online" in actions
        onlines = [n for _, n in elastic.capacity_timeline]
        assert min(onlines) == 2  # the dip
        assert onlines[-1] == 3  # and the recovery
        assert elastic.availability(result.makespan) < 1.0
        assert elastic.warmup_seconds > 0  # recovery paid the warm-up

    def test_recovered_replica_serves_again(self):
        trace = make_trace(MIXED, rate=4.0, num_requests=40, seed=9)
        _, result = self._run_faulted(
            FaultPlan.scripted((3.0, 1), downtime_s=2.0), trace=trace
        )
        crashed_replica = result.per_replica[1]
        late = [
            r for r in crashed_replica.requests
            if r.arrival_time > 3.0 + 2.0
        ]
        assert late  # round-robin sent it fresh work after recovery

    def test_fault_on_offline_replica_is_absorbed(self):
        # Two faults on the same replica, the second inside the first's
        # downtime window: it must be skipped, not double-crash.
        trace, result = self._run_faulted(
            FaultPlan.scripted((4.0, 0), (5.0, 0), downtime_s=30.0)
        )
        elastic = result.elastic
        assert elastic.crashes == 1
        assert ("crash-skipped" in [a for _, a, _ in elastic.scaling_log])
        assert len(result.finished_requests) == len(trace)

    def test_all_replicas_crashed_holds_arrivals_in_limbo(self):
        trace = make_trace(SHAREGPT, rate=2.0, num_requests=10, seed=5)
        plan = FaultPlan.scripted((0.5, 0), (0.5, 1), downtime_s=4.0)
        trace, result = self._run_faulted(plan, trace=trace, replicas=2)
        elastic = result.elastic
        assert elastic.crashes == 2
        assert 0 in [n for _, n in elastic.capacity_timeline]
        # Arrivals during the outage waited in limbo and were served
        # after recovery — none lost.
        assert len(result.finished_requests) == len(trace)

    def test_instant_recovery_records_capacity_at_fire_time(self):
        """With warm-up modelling off, a crash recovery must still land
        on the capacity/availability timeline the moment it fires, not a
        control tick later."""
        _, result = self._run_faulted(
            FaultPlan.scripted((4.0, 0), downtime_s=5.0), warmup=False,
        )
        elastic = result.elastic
        assert elastic.warmup_seconds == 0.0
        times = {a: t for t, a, _ in elastic.scaling_log}
        assert times["online"] == pytest.approx(times["recover"])
        recovery_entry = next(
            (t, n) for t, n in elastic.capacity_timeline if n == 3 and t > 0
        )
        assert recovery_entry[0] == pytest.approx(times["recover"])

    def test_crash_changes_behaviour(self):
        trace = make_trace(MIXED, rate=6.0, num_requests=24, seed=7)
        _, faulted = self._run_faulted(FaultPlan.scripted((4.0, 0)), trace=trace)
        clean = make_fleet(
            "loongserve", replicas=3, router="round-robin", requests=trace
        ).run(clone_requests(trace))
        lat_faulted = sorted(r.end_to_end_latency for r in faulted.finished_requests)
        lat_clean = sorted(r.end_to_end_latency for r in clean.finished_requests)
        assert lat_faulted != lat_clean


class TestMidMigrationRescue:
    def test_destination_crash_rescues_inflight_stolen_request(self):
        from repro.costmodel.comm import CollectiveModel
        from repro.fleet import KVMigrator

        sim = Simulator()
        src = ReplicaHandle(0, make_system("loongserve", prefix_cache=True))
        dst = ReplicaHandle(1, make_system("loongserve", prefix_cache=True))
        src.prepare(sim)
        dst.prepare(sim)
        trace = make_session_trace(rate=5.0, num_sessions=4, seed=13)
        for request in trace:
            src.submit(request)
        sim.run_until_idle()

        follow_up = clone_requests([r for r in trace if r.turn > 0])[-1]
        follow_up.arrival_time = sim.now
        src.submit(follow_up)
        config = src.server.config
        policy = ClusterPolicy(
            make_router("affinity"),
            stealer=WorkStealer(StealConfig(min_queue_gap=1)),
            migrator=KVMigrator(
                collectives=CollectiveModel(cluster=config.cluster),
                model=config.model,
                tensor_parallel=config.tensor_parallel,
            ),
            injector=FaultInjector(plan=FaultPlan()),
        )
        stats = ElasticStats()
        controller = FleetController(
            policy=policy, replicas=[src, dst], sim=sim, stats=stats,
        )
        controller._steal()
        assert stats.stolen_requests == 1
        assert controller._deliveries  # the rider is in flight toward dst
        # dst dies before the KV lands: the rider must be rescued, and
        # with affinity placement it goes home to src's surviving copy.
        controller._inject(ReplicaFault(time=sim.now, replica_id=1))
        assert stats.rescued_inflight == 1
        assert not controller._deliveries
        assert follow_up in src.routed
        sim.run_until_idle()
        assert follow_up.finished
        # The request never reached dst's ledger.
        assert follow_up not in dst.routed


class LifecycleStub:
    """Controller-facing replica stub with the full mutation surface."""

    def __init__(self, replica_id, queued=0):
        self.replica_id = replica_id
        self.online = True
        self.draining = False
        self.crashed = False
        self.warming = False
        self.queued = queued
        self.log = []
        self.submitted = []

    @property
    def available(self):
        return self.online and not self.draining

    @property
    def placeable(self):
        return not self.crashed and not self.warming

    def queued_requests(self):
        return [object()] * self.queued

    def kv_used_fraction(self):
        return 0.0

    def outstanding_requests(self):
        return self.queued

    def outstanding_tokens(self):
        return self.queued * 100

    def refresh_probes(self):
        pass

    def drain(self):
        self.draining = True
        self.log.append("drain")

    def park(self):
        self.online = False
        self.draining = False
        self.log.append("park")
        return True

    def unpark(self):
        self.online = True
        self.draining = False
        self.log.append("unpark")

    def begin_warmup(self):
        self.warming = True
        self.online = False
        self.draining = False
        self.log.append("begin_warmup")

    def complete_warmup(self):
        self.warming = False
        self.crashed = False
        self.online = True
        self.log.append("complete_warmup")

    def clear_prefix_cache(self):
        return 0

    def submit(self, request):
        self.submitted.append(request)

    def prefix_match_len(self, request):
        return 0


class TestFailoverPlacementFallback:
    def test_orphans_reach_parked_replica_not_limbo(self):
        """Orphans must take the same placement fallback arrivals do: a
        parked-but-healthy replica serves them, limbo is only for the
        everything-dead case."""
        sim = Simulator()
        parked = LifecycleStub(0)
        parked.online = False  # healthy, just scaled in: placeable
        dead = LifecycleStub(1)
        dead.online = False
        dead.crashed = True
        policy = ClusterPolicy(
            make_router("round-robin"),
            injector=FaultInjector(plan=FaultPlan()),
        )
        controller = FleetController(
            policy=policy, replicas=[parked, dead], sim=sim,
            stats=ElasticStats(),
        )
        orphan = make_request()
        controller._failover([orphan], now=0.0)
        assert parked.submitted == [orphan]
        assert controller._limbo == []
        # With the parked replica also gone, limbo catches the orphan.
        parked.crashed = True
        other = make_request()
        controller._failover([other], now=0.0)
        assert controller._limbo == [other]


class TestAvailabilityAccounting:
    def test_autoscaler_parking_is_not_unavailability(self):
        stats = ElasticStats()
        stats.record_capacity(0.0, 4)
        stats.record_capacity(10.0, 2)  # two replicas parked on purpose
        assert stats.availability(100.0) == 1.0

    def test_fault_outages_lower_availability(self):
        stats = ElasticStats()
        stats.record_capacity(0.0, 4)
        stats.note_outage_start(10.0, 0)
        stats.note_outage_end(30.0, 0)
        stats.note_outage_start(90.0, 1)  # still down when the run ends
        # (20 + 10) lost of 4 * 100 peak replica-seconds.
        assert stats.fault_downtime_seconds(100.0) == pytest.approx(30.0)
        assert stats.availability(100.0) == pytest.approx(1.0 - 30.0 / 400.0)

    def test_outage_end_ignores_plain_unparks(self):
        stats = ElasticStats()
        stats.record_capacity(0.0, 2)
        stats.note_outage_end(5.0, 0)  # autoscaler unpark: no open outage
        assert stats.fault_outages == []
        assert stats.availability(10.0) == 1.0


class TestWarmupAwareAutoscaling:
    def test_unpark_target_skips_warming_and_crashed(self):
        scaler = QueueDepthAutoscaler(AutoscalerConfig(hysteresis_ticks=1))
        busy = LifecycleStub(0, queued=10)
        warming = LifecycleStub(1)
        warming.begin_warmup()
        crashed = LifecycleStub(2)
        crashed.online = False
        crashed.crashed = True
        assert scaler.decide([busy, warming, crashed], 0.0) == []
        parked = LifecycleStub(3)
        parked.online = False
        actions = scaler.decide([busy, warming, crashed, parked], 0.5)
        assert actions == [("unpark", parked)]

    def test_warming_replica_suppresses_scale_in(self):
        scaler = QueueDepthAutoscaler(AutoscalerConfig(hysteresis_ticks=1))
        idle_a, idle_b = LifecycleStub(0), LifecycleStub(1)
        warming = LifecycleStub(2)
        warming.begin_warmup()
        # Underloaded, but capacity is in flight: no drain, cold streak
        # stays at zero until the warm-up lands.
        for now in (0.0, 0.5, 1.0):
            assert scaler.decide([idle_a, idle_b, warming], now) == []
        assert scaler._cold_ticks == 0
        warming.complete_warmup()
        assert scaler.decide([idle_a, idle_b, warming], 1.5) != []

    def test_unpark_pays_warmup_before_coming_online(self):
        sim = Simulator()
        busy = LifecycleStub(0, queued=10)
        parked = LifecycleStub(1)
        parked.online = False
        policy = ClusterPolicy(
            make_router("round-robin"),
            autoscaler=QueueDepthAutoscaler(AutoscalerConfig(hysteresis_ticks=1)),
            lifecycle=ReplicaLifecycleModel(warmup_s=2.0, cooldown_s=0.5),
        )
        stats = ElasticStats()
        controller = FleetController(
            policy=policy, replicas=[busy, parked], sim=sim, stats=stats,
            interval=0.5, work_remaining=lambda: True,
        )
        controller.start()
        sim.run(until=1.0)
        assert parked.warming and not parked.online  # decided, not yet up
        sim.run(until=2.4)
        assert parked.warming  # 2s warm-up spans four control intervals
        sim.run(until=2.6)
        assert parked.online and not parked.warming
        assert stats.warmup_seconds == pytest.approx(2.0)
        times = dict((a, t) for t, a, _ in stats.scaling_log)
        assert times["online"] - times["unpark"] == pytest.approx(2.0)

    def test_no_flap_park_when_warmup_exceeds_control_interval(self):
        """The satellite gate: a replica whose warm-up spans several
        control intervals must not be drained the moment it lands, even
        though the fleet looked cold for the whole warm-up."""
        sim = Simulator()
        busy = LifecycleStub(0, queued=10)
        parked = LifecycleStub(1)
        parked.online = False
        hysteresis = 2
        policy = ClusterPolicy(
            make_router("round-robin"),
            autoscaler=QueueDepthAutoscaler(
                AutoscalerConfig(hysteresis_ticks=hysteresis)
            ),
            lifecycle=ReplicaLifecycleModel(warmup_s=3.0, cooldown_s=0.0),
        )
        stats = ElasticStats()
        controller = FleetController(
            policy=policy, replicas=[busy, parked], sim=sim, stats=stats,
            interval=0.5, work_remaining=lambda: True,
        )
        controller.start()
        sim.run(until=1.6)  # hysteresis x interval: the unpark decision fires
        assert parked.warming
        busy.queued = 0  # the burst ends while the replica still warms
        online_at = None
        drain_at = None
        t = 1.6
        while t < 8.0 and drain_at is None:
            t += 0.1
            sim.run(until=t)
            if parked.online and online_at is None:
                online_at = sim.now
            if any(a == "drain" for _, a, _ in stats.scaling_log):
                drain_at = sim.now
        assert online_at is not None
        assert drain_at is not None  # the idle replica is eventually drained
        # ...but never while it was still warming (without the guard the
        # cold streak would have drained it at ~2.5s, mid-warm-up), and
        # only after the cold hysteresis re-accumulated from zero once
        # it came online.
        assert drain_at > online_at
        assert drain_at - online_at >= (hysteresis - 1) * 0.5 - 1e-9

    def test_park_charges_cooldown(self):
        sim = Simulator()
        draining = LifecycleStub(0)
        draining.draining = True
        other = LifecycleStub(1, queued=1)
        policy = ClusterPolicy(
            make_router("round-robin"),
            autoscaler=QueueDepthAutoscaler(),
            lifecycle=ReplicaLifecycleModel(warmup_s=1.0, cooldown_s=0.7),
        )
        stats = ElasticStats()
        controller = FleetController(
            policy=policy, replicas=[draining, other], sim=sim, stats=stats,
        )
        controller._park_drained()
        assert not draining.online
        assert stats.cooldown_seconds == pytest.approx(0.7)
        assert stats.paid_replica_seconds(0.0) == pytest.approx(0.7)


class TestFaultsDisabledGoldenGate:
    """FaultInjector disabled ⇒ bit-identical to the pre-fault build.
    The stored hashes are the PR 3 static-gate signatures; an empty
    fault plan must reproduce them exactly (same pattern as the
    all-actuators-off gate in test_elastic_fleet.py)."""

    @staticmethod
    def _signature(result):
        signature = sorted(
            (r.input_len, r.output_len, round(r.arrival_time, 9),
             round(r.prefill_end, 9), round(r.first_token_time, 9),
             round(r.finish_time, 9), r.preemptions)
            for r in result.requests
        )
        return hashlib.md5(repr(signature).encode()).hexdigest()

    def test_empty_plan_arms_no_injector(self):
        fleet = make_fleet("loongserve", replicas=2, faults=FaultPlan())
        assert fleet.policy.injector is None
        assert not fleet.policy.has_actuators

    def test_empty_plan_keeps_pr3_static_signature(self):
        trace = make_trace(MIXED, rate=4.0, num_requests=30, seed=7)
        fleet = make_fleet(
            "loongserve", replicas=3, router="least-kv", requests=trace,
            faults=FaultPlan(),
        )
        result = fleet.run(clone_requests(trace))
        assert self._signature(result) == "8122bb3adaa19bf6518c165082fbc8a7"

    def test_empty_plan_keeps_pr3_sessions_signature(self):
        trace = make_session_trace(rate=0.8, num_sessions=10, seed=5)
        fleet = make_fleet(
            "loongserve", replicas=2, router="affinity",
            requests=trace, prefix_cache=True, faults=FaultPlan(),
        )
        result = fleet.run(clone_requests(trace))
        assert self._signature(result) == "78b843cd0ebb16e37980fdedb9e90ea0"

    def test_armed_injector_with_unreached_fault_matches_fault_free(self):
        """A fault scheduled far beyond the trace horizon never fires
        (the controller cancels it once the fleet drains): per-request
        timelines must match the injector-free run bit for bit."""
        trace = make_trace(MIXED, rate=6.0, num_requests=20, seed=3)
        armed = make_fleet(
            "loongserve", replicas=3, router="least-kv", requests=trace,
            faults=FaultPlan.scripted((1e9, 0)), warmup=False,
        )
        bare = make_fleet(
            "loongserve", replicas=3, router="least-kv", requests=trace,
        )
        armed_result = armed.run(clone_requests(trace))
        bare_result = bare.run(clone_requests(trace))
        assert self._signature(armed_result) == self._signature(bare_result)
        assert armed_result.elastic.crashes == 0
        # The cancelled fault must not stretch the simulation.
        assert armed_result.makespan < 1e9


class TestRerunIndependence:
    """The reset() audit satellite: injector, migration, stealing, and
    autoscaler state must all clear between runs of one fleet object, so
    repeated experiment invocations in one process are independent."""

    def test_faulted_fleet_reruns_identically(self):
        trace = make_session_trace(rate=3.0, num_sessions=8, seed=11)
        fleet = make_fleet(
            "loongserve", replicas=3, router="affinity", requests=trace,
            prefix_cache=True, autoscale=True, steal=True, migrate_kv=True,
            faults=FaultPlan.scripted((5.0, 0), downtime_s=8.0),
        )
        first = fleet.run(clone_requests(trace))
        first_injected = list(fleet.policy.injector.injected)
        second = fleet.run(clone_requests(trace))
        lat_a = sorted(r.normalized_latency for r in first.finished_requests)
        lat_b = sorted(r.normalized_latency for r in second.finished_requests)
        assert lat_a == pytest.approx(lat_b)
        assert first.elastic.capacity_timeline == second.elastic.capacity_timeline
        assert first.elastic.scaling_log == second.elastic.scaling_log
        assert first.elastic.crashes == second.elastic.crashes == 1
        assert fleet.policy.injector.injected == first_injected

    def test_policy_reset_reaches_injector(self):
        injector = FaultInjector(plan=FaultPlan.scripted((1.0, 0)))
        injector.note_injected(injector.plan.faults[0])
        policy = ClusterPolicy(make_router("round-robin"), injector=injector)
        policy.reset()
        assert injector.injected == []


class TestFaultCLI:
    def test_serve_with_scripted_fault_prints_fault_block(self, capsys):
        from repro.__main__ import main as repro_main

        code = repro_main(
            ["serve", "--replicas", "2", "--dataset", "mixed", "--rate", "6",
             "-n", "16", "--seed", "9", "--fault-at", "2:0",
             "--fault-downtime", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "+faults" in out
        assert "faults: 1 crashes" in out
        assert "availability" in out

    def test_fault_flags_need_a_fleet(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(["serve", "--fault-at", "2:0"]) == 2
        assert "--replicas" in capsys.readouterr().err

    def test_fault_flags_need_crashable_system(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(
            ["serve", "--system", "vllm", "--replicas", "2",
             "--fault-at", "2:0"]
        ) == 2
        assert "crashable" in capsys.readouterr().err

    def test_fault_target_out_of_range(self, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(
            ["serve", "--replicas", "2", "--fault-at", "2:7"]
        ) == 2
        assert "only 2 replicas" in capsys.readouterr().err

    def test_bad_fault_at_format_rejected(self, capsys):
        from repro.__main__ import main as repro_main

        with pytest.raises(SystemExit):
            repro_main(["serve", "--replicas", "2", "--fault-at", "nope"])
        assert "TIME:REPLICA" in capsys.readouterr().err

    def test_negative_fault_at_rejected_cleanly(self, capsys):
        from repro.__main__ import main as repro_main

        with pytest.raises(SystemExit):
            repro_main(["serve", "--replicas", "2", "--fault-at=-1:0"])
        assert "non-negative" in capsys.readouterr().err

    def test_non_finite_fault_flags_rejected_cleanly(self, capsys):
        from repro.__main__ import main as repro_main

        with pytest.raises(SystemExit):
            repro_main(["serve", "--replicas", "2", "--fault-at", "nan:0"])
        assert "finite" in capsys.readouterr().err
        assert repro_main(
            ["serve", "--replicas", "2", "--fault-at", "2:0",
             "--fault-downtime", "inf"]
        ) == 2
        assert "finite" in capsys.readouterr().err
        assert repro_main(
            ["serve", "--replicas", "2", "--fault-mtbf", "nan"]
        ) == 2
        assert "finite" in capsys.readouterr().err
