"""Tests for the discrete-event simulation core."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.events import EventQueue
from repro.sim.trace import TraceRecorder


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        while queue:
            queue.pop().action()
        assert order == ["a", "b"]

    def test_ties_resolved_by_priority_then_seq(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("late"), priority=5)
        queue.push(1.0, lambda: order.append("early"), priority=0)
        queue.push(1.0, lambda: order.append("early2"), priority=0)
        while queue:
            queue.pop().action()
        assert order == ["early", "early2", "late"]

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()


class TestSimulator:
    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.call_at(5.0, lambda: seen.append(sim.now))
        sim.call_at(3.0, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [3.0, 5.0]
        assert sim.now == 5.0

    def test_call_after_relative(self):
        sim = Simulator()
        seen = []
        sim.call_at(2.0, lambda: sim.call_after(1.5, lambda: seen.append(sim.now)))
        sim.run_until_idle()
        assert seen == [3.5]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.call_at(5.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(ValueError):
            sim.call_at(1.0, lambda: None)

    def test_run_until_bound(self):
        sim = Simulator()
        seen = []
        for t in (1.0, 2.0, 3.0):
            sim.call_at(t, lambda t=t: seen.append(t))
        sim.run(until=2.5)
        assert seen == [1.0, 2.0]
        assert sim.now == 2.5

    def test_clock_advances_to_until_when_idle(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_skips_cancelled_head(self):
        # Regression: a lazily-cancelled timer at the head of the queue
        # used to make ``run(until=...)`` break on its (dead) timestamp,
        # leaving the clock short and phantom work in the queue.
        sim = Simulator()
        timer = sim.call_at(7.0, lambda: pytest.fail("cancelled timer ran"))
        timer.cancel()
        sim.run(until=6.0)
        assert sim.now == 6.0
        assert sim.next_event_time() is None

    def test_run_until_cancelled_head_before_live_event(self):
        sim = Simulator()
        seen = []
        timer = sim.call_at(1.0, lambda: seen.append("dead"))
        sim.call_at(2.0, lambda: seen.append("live"))
        timer.cancel()
        sim.run(until=5.0)
        assert seen == ["live"]
        assert sim.now == 5.0

    def test_next_event_time(self):
        sim = Simulator()
        assert sim.next_event_time() is None
        timer = sim.call_at(4.0, lambda: None)
        sim.call_at(9.0, lambda: None)
        assert sim.next_event_time() == 4.0
        timer.cancel()
        assert sim.next_event_time() == 9.0

    def test_stop_exits_loop(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda: (seen.append(1), sim.stop()))
        sim.call_at(2.0, lambda: seen.append(2))
        sim.run_until_idle()
        assert seen == [(1, None)] or len(seen) == 1

    def test_deterministic_replay(self):
        def run_once() -> list[float]:
            sim = Simulator()
            seen: list[float] = []
            for t in (3.0, 1.0, 1.0, 2.0):
                sim.call_at(t, lambda t=t: seen.append(t))
            sim.run_until_idle()
            return seen

        assert run_once() == run_once()

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0):
            sim.call_at(t, lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 2

    def test_max_events_guard(self):
        sim = Simulator()

        def reschedule():
            sim.call_after(1.0, reschedule)

        sim.call_at(0.0, reschedule)
        sim.run(max_events=100)
        assert sim.events_processed == 100

    def test_cancelled_timer_neither_runs_nor_counts(self):
        sim = Simulator()
        fired = []
        timer = sim.call_at(1.0, lambda: fired.append("cancelled"))
        sim.call_at(2.0, lambda: fired.append("live"))
        timer.cancel()
        sim.run_until_idle()
        assert fired == ["live"]
        assert sim.events_processed == 1

    def test_cancelled_timers_do_not_consume_event_budget(self):
        """Regression: a timer-heavy trace whose timers were cancelled
        must not exhaust ``run``'s ``max_events`` budget on no-ops."""
        sim = Simulator()
        fired = []
        timers = [
            sim.call_at(1.0, lambda i=i: fired.append(i)) for i in range(50)
        ]
        for timer in timers:
            timer.cancel()
        sim.call_at(2.0, lambda: fired.append("live"))
        sim.run(max_events=1)
        assert fired == ["live"]
        assert sim.now == 2.0
        assert sim.events_processed == 1

    def test_cancelled_timers_are_compacted_out_of_the_heap(self):
        """Regression: long fleet runs cancel many timers; once cancelled
        entries outnumber live ones the heap must shrink (keeping pop
        cost O(log live)) instead of accumulating dead weight."""
        sim = Simulator()
        fired = []
        timers = [
            sim.call_at(float(i + 1), lambda i=i: fired.append(i))
            for i in range(1000)
        ]
        for timer in timers[100:]:
            timer.cancel()
        queue = sim._queue
        assert len(queue) < 1000  # compaction fired mid-cancellation
        assert queue.cancelled_pending <= len(queue) // 2 + 1
        sim.run_until_idle()
        assert fired == list(range(100))  # order survives the rebuild
        assert sim.events_processed == 100

    def test_compaction_skipped_for_small_heaps(self):
        """Tiny heaps are cheap to pop through; no rebuild below the
        threshold, and lazy discarding still works."""
        sim = Simulator()
        fired = []
        timers = [sim.call_at(1.0, lambda i=i: fired.append(i)) for i in range(10)]
        for timer in timers:
            timer.cancel()
        assert len(sim._queue) == 10  # nothing compacted
        sim.run_until_idle()
        assert fired == []
        assert sim.events_processed == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        timer = sim.call_at(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        assert sim._queue.cancelled_pending == 1
        sim.run_until_idle()
        assert sim._queue.cancelled_pending == 0

    def test_cancel_after_fire_does_not_drift_counter(self):
        """Regression: cancelling timers whose events already ran (the
        usual cancel-a-timeout-after-completion pattern) must not count
        as heap dead weight nor trigger spurious compactions."""
        sim = Simulator()
        timers = [sim.call_at(1.0, lambda: None) for _ in range(100)]
        sim.run_until_idle()
        for timer in timers:
            timer.cancel()
        assert sim._queue.cancelled_pending == 0
        # A queue polluted this way must still behave for live events.
        fired = []
        sim.call_at(2.0, lambda: fired.append("live"))
        sim.run_until_idle()
        assert fired == ["live"]


class TestTraceRecorder:
    def test_records_and_filters(self):
        trace = TraceRecorder()
        trace.record(1.0, "arrival", request=1)
        trace.record(2.0, "finish", request=1)
        assert len(trace) == 2
        assert trace.of_kind("arrival")[0].payload["request"] == 1
        assert trace.kinds() == {"arrival", "finish"}

    def test_disabled_recorder_is_noop(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "arrival")
        assert len(trace) == 0

    def test_between_window(self):
        trace = TraceRecorder()
        for t in (1.0, 2.0, 3.0):
            trace.record(t, "tick")
        assert len(trace.between(1.5, 3.0)) == 1

    def test_render_contains_kind(self):
        trace = TraceRecorder()
        trace.record(1.0, "scale_up", batch=3)
        assert "scale_up" in trace.render()


class TestWeakEvents:
    """Weak events: pure observers that never stretch the clock."""

    def test_trailing_weak_event_is_discarded(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, lambda: fired.append("real"))
        sim.call_at(2.0, lambda: fired.append("weak"), weak=True)
        end = sim.run_until_idle()
        assert fired == ["real"]
        assert end == 1.0  # the weak tail never advanced the clock
        assert sim.events_processed == 1

    def test_weak_event_runs_when_work_remains(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, lambda: fired.append("weak"), weak=True)
        sim.call_at(2.0, lambda: fired.append("real"))
        sim.run_until_idle()
        assert fired == ["weak", "real"]
        assert sim.now == 2.0

    def test_weak_chain_stops_at_last_real_event(self):
        """A self-re-arming weak timer (the telemetry sampler pattern)
        samples through the run but leaves the final clock untouched."""
        sim = Simulator()
        samples = []

        def tick():
            samples.append(sim.now)
            if sim.next_event_time() is not None:
                sim.call_after(1.0, tick, weak=True)

        sim.call_after(1.0, tick, weak=True)
        sim.call_at(3.5, lambda: None)
        end = sim.run_until_idle()
        assert samples == [1.0, 2.0, 3.0]
        assert end == 3.5
