"""Tests for trace serialization (jsonl save/load)."""

import pytest

from repro.workloads.datasets import MIXED
from repro.workloads.serialization import (
    load_trace,
    records_to_trace,
    save_trace,
    trace_to_records,
)
from repro.workloads.trace_gen import make_trace


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path):
        trace = make_trace(MIXED, rate=1.0, num_requests=25, seed=5)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        for original, restored in zip(trace, loaded):
            assert restored.request_id == original.request_id
            assert restored.input_len == original.input_len
            assert restored.output_len == original.output_len
            assert restored.arrival_time == original.arrival_time
            assert restored.max_tokens == original.max_tokens

    def test_loaded_requests_are_fresh(self, tmp_path):
        trace = make_trace(MIXED, rate=1.0, num_requests=3, seed=6)
        trace[0].generated = 9
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded[0].generated == 0

    def test_loaded_sorted_by_arrival(self):
        records = [
            {"request_id": 1, "input_len": 10, "output_len": 2, "arrival_time": 5.0},
            {"request_id": 2, "input_len": 10, "output_len": 2, "arrival_time": 1.0},
        ]
        trace = records_to_trace(records)
        assert [r.request_id for r in trace] == [2, 1]

    def test_tied_arrivals_load_deterministically_and_serve_identically(
        self, tmp_path
    ):
        from repro.config import default_config
        from repro.core.server import LoongServeServer
        from repro.workloads.datasets import SHAREGPT
        from repro.workloads.trace_gen import clone_requests

        trace = make_trace(SHAREGPT, rate=4.0, num_requests=12, seed=9)
        for i, request in enumerate(trace):
            request.arrival_time = float(i // 3)  # groups of tied arrivals
        path = tmp_path / "tied.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert [r.request_id for r in loaded] == [r.request_id for r in trace]
        # Shuffled records still load in the same canonical order: the
        # sort key is (arrival_time, request_id), so on-disk record
        # order cannot leak into serving.
        shuffled = records_to_trace(list(reversed(trace_to_records(trace))))
        assert [r.request_id for r in shuffled] == [
            r.request_id for r in loaded
        ]

        def signature(result):
            return sorted(
                (r.request_id, round(r.finish_time, 12))
                for r in result.requests
            )

        original = LoongServeServer(default_config()).run(clone_requests(trace))
        round_tripped = LoongServeServer(default_config()).run(
            clone_requests(shuffled)
        )
        assert signature(round_tripped) == signature(original)

    def test_records_exclude_runtime_state(self):
        trace = make_trace(MIXED, rate=1.0, num_requests=2, seed=7)
        records = trace_to_records(trace)
        assert set(records[0]) == {
            "request_id", "input_len", "output_len", "arrival_time", "max_tokens",
        }


class TestErrors:
    def test_missing_field_raises(self):
        with pytest.raises(ValueError, match="missing fields"):
            records_to_trace([{"request_id": 1, "input_len": 10}])

    def test_invalid_json_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"request_id": 1, "input_len": 10,\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text(
            '{"request_id": 1, "input_len": 10, "output_len": 2, "arrival_time": 0.5}\n'
            "\n"
            '{"request_id": 2, "input_len": 20, "output_len": 3, "arrival_time": 1.5}\n'
        )
        assert len(load_trace(path)) == 2
