"""Tests for the experiment harness: every figure runs and reproduces the
paper's qualitative claims at reduced scale."""

import math

import pytest

from repro.experiments import endtoend, microbench, report
from repro.experiments.systems import make_system
from repro.workloads.datasets import SHAREGPT
from repro.workloads.trace_gen import make_trace


class TestMicrobenchFigures:
    def test_figure2_prefill_scales_decode_does_not(self):
        rows = microbench.figure2()
        long_prefill = next(
            r for r in rows if r.phase == "prefill" and r.length == 100_000
        )
        assert long_prefill.speedup_at_max_tp > 2.5
        short_decode = next(
            r for r in rows if r.phase == "decode" and r.length == 100
        )
        assert short_decode.speedup_at_max_tp < 1.3

    def test_figure2_normalization(self):
        rows = microbench.figure2()
        for row in rows:
            assert min(row.normalized.values()) <= 1.0

    def test_figure3_sp_wins_or_ties(self):
        """Paper: SPxTP matches or beats pure TP on the whole grid."""
        rows = microbench.figure3()
        for row in rows:
            if row.phase == "prefill":
                assert row.times["SP4TP2"] <= row.times["SP1TP8"] * 1.05

    def test_figure14a_proactive_free_reactive_costly(self):
        rows = microbench.figure14a()
        for row in rows:
            assert row.proactive_overhead == pytest.approx(0.0)
        long_rows = [r for r in rows if r.batch_size * r.length >= 200_000]
        assert long_rows
        assert all(r.reactive_overhead > 0.005 for r in long_rows)

    def test_figure14b_masters_speedup_shape(self):
        """Large batches gain ~2x from 4 masters; small batches don't pay
        more than ~10% (paper's Figure 14b)."""
        rows = microbench.figure14b()
        big = next(r for r in rows if r.batch_size == 1024)
        assert big.speedup_4_masters > 1.5
        small = next(r for r in rows if r.batch_size == 1)
        assert 0.90 < small.speedup_4_masters < 1.10

    def test_figure15_under_ten_percent(self):
        points = microbench.figure15()
        assert microbench.figure15_max_deviation(points) < 0.10
        assert microbench.figure15_mean_deviation(points) < 0.02

    def test_figure15_covers_strategies(self):
        points = microbench.figure15()
        assert {p.strategy for p in points} == {"SP2TP4", "SP4TP2", "SP8TP1"}


class TestEndToEndHarness:
    def test_sweep_structure(self):
        curves = endtoend.sweep(
            ["loongserve", "vllm"], SHAREGPT, rates=[5.0],
            requests_per_rate_second=4.0, min_requests=10,
        )
        assert {c.system for c in curves} == {"loongserve", "vllm"}
        for curve in curves:
            assert len(curve.points) == 1
            point = curve.points[0]
            assert point.finished > 0
            assert math.isfinite(point.per_token)

    def test_goodput_from_curve(self):
        curve = endtoend.SystemCurve(system="x")
        for rate, attainment in [(1.0, 1.0), (2.0, 0.5)]:
            curve.points.append(
                endtoend.RatePoint(
                    rate=rate, per_token=0.1, input_token=0.1, output_token=0.1,
                    attainment=attainment, finished=1, total=1, aborted=0,
                )
            )
        # Attainment crosses the 0.9 target between the swept rates; the
        # default interpolation recovers the sub-grid crossing.
        assert curve.goodput() == pytest.approx(1.2)
        assert curve.goodput(target=0.95) == pytest.approx(1.1)

    def test_figure13b_histogram_nonempty(self):
        bins = endtoend.figure13b(duration_s=15.0, rate=30.0)
        assert isinstance(bins, list)
        assert sum(bins) >= 0

    def test_headline_ratios_computed(self):
        results = {
            "mixed": [
                self._curve("loongserve", [(1.0, 1.0), (2.0, 0.95)]),
                self._curve("vllm", [(1.0, 1.0), (2.0, 0.5)]),
            ]
        }
        ratios = endtoend.headline_ratios(results)
        # LoongServe passes the whole sweep (goodput 2.0); vLLM's knee
        # interpolates to 1.2, so the headline ratio is 2.0 / 1.2.
        assert ratios["vllm"] == pytest.approx(2.0 / 1.2)

    @staticmethod
    def _curve(name, points):
        curve = endtoend.SystemCurve(system=name)
        for rate, attainment in points:
            curve.points.append(
                endtoend.RatePoint(
                    rate=rate, per_token=0.1, input_token=0.1, output_token=0.1,
                    attainment=attainment, finished=1, total=1, aborted=0,
                )
            )
        return curve

    def test_make_system_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_system("gpt-in-a-box")

    def test_make_system_builds_all(self):
        trace = make_trace(SHAREGPT, rate=1.0, num_requests=3, seed=1)
        for name in [
            "loongserve", "loongserve-no-scaleup", "vllm", "splitfuse",
            "deepspeed-mii", "distserve", "static-sp", "replicated-tp2",
        ]:
            system = make_system(name, requests=trace)
            assert hasattr(system, "run")


class TestReportRendering:
    def test_figure2_table_renders(self):
        text = report.render_figure2(microbench.figure2())
        assert "TP=8" in text and "prefill" in text

    def test_figure3_table_renders(self):
        text = report.render_figure3(microbench.figure3())
        assert "SP4TP2" in text

    def test_figure14_tables_render(self):
        assert "proactive" in report.render_figure14a(microbench.figure14a())
        assert "masters" in report.render_figure14b(microbench.figure14b())

    def test_figure15_table_renders(self):
        text = report.render_figure15(microbench.figure15(), limit=5)
        assert "dev" in text

    def test_curves_table_renders(self):
        curve = endtoend.SystemCurve(system="demo")
        curve.points.append(
            endtoend.RatePoint(
                rate=1.0, per_token=0.1, input_token=0.2, output_token=0.3,
                attainment=0.99, finished=9, total=10, aborted=1,
            )
        )
        text = report.render_curves([curve])
        assert "demo" in text and "99%" in text
        assert "P90" in report.render_goodput([curve])
