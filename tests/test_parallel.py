"""Tests for parallelism strategies, groups, and scaling plan structures."""

import pytest

from repro.parallel.esp import ScaleDownPlan, ScaleUpPlan
from repro.parallel.groups import ParallelGroup
from repro.parallel.strategy import ParallelismStrategy, strategies_for_gpus


class TestStrategy:
    def test_label_matches_paper_naming(self):
        assert ParallelismStrategy(2, 4).label == "SP4TP2"

    def test_world_size(self):
        assert ParallelismStrategy(2, 4).world_size == 8

    def test_dop_is_sp(self):
        assert ParallelismStrategy(2, 3).dop == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ParallelismStrategy(0, 1)
        with pytest.raises(ValueError):
            ParallelismStrategy(1, 0)

    def test_strategies_for_gpus(self):
        menu = strategies_for_gpus(8, tensor_parallel=2)
        assert [s.sequence_parallel for s in menu] == [1, 2, 3, 4]

    def test_strategies_rejects_indivisible(self):
        with pytest.raises(ValueError):
            strategies_for_gpus(10, tensor_parallel=4)

    def test_ordering(self):
        a = ParallelismStrategy(2, 1)
        b = ParallelismStrategy(2, 4)
        assert a < b


class TestParallelGroup:
    def test_default_master_is_first(self):
        group = ParallelGroup(instance_ids=(3, 1), tensor_parallel=2)
        assert group.masters == (3,)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            ParallelGroup(instance_ids=(1, 1), tensor_parallel=2)

    def test_rejects_foreign_master(self):
        with pytest.raises(ValueError):
            ParallelGroup(instance_ids=(0, 1), tensor_parallel=2, masters=(5,))

    def test_expanded_keeps_masters(self):
        group = ParallelGroup(instance_ids=(0,), tensor_parallel=2)
        bigger = group.expanded((1, 2))
        assert bigger.instance_ids == (0, 1, 2)
        assert bigger.masters == (0,)

    def test_expanded_rejects_overlap(self):
        group = ParallelGroup(instance_ids=(0, 1), tensor_parallel=2)
        with pytest.raises(ValueError):
            group.expanded((1,))

    def test_shrunk_reassigns_masters(self):
        group = ParallelGroup(instance_ids=(0, 1, 2), tensor_parallel=2, masters=(0,))
        smaller = group.shrunk((1, 2))
        assert smaller.masters == (1,)

    def test_shrunk_to_empty_rejected(self):
        group = ParallelGroup(instance_ids=(0,), tensor_parallel=2)
        with pytest.raises(ValueError):
            group.shrunk(())

    def test_strategy_derived(self):
        group = ParallelGroup(instance_ids=(0, 1, 2), tensor_parallel=2)
        assert group.strategy.label == "SP3TP2"

    def test_contains_and_len(self):
        group = ParallelGroup(instance_ids=(0, 2), tensor_parallel=2)
        assert 2 in group
        assert 1 not in group
        assert len(group) == 2


class TestScaleDownPlan:
    def test_valid_plan(self):
        plan = ScaleDownPlan(group_before=(0, 1, 2), placement={0: 10, 1: 5})
        assert plan.group_after == (0, 1)
        assert plan.released == (2,)
        assert plan.total_tokens == 15
        assert plan.migration_tokens == 0

    def test_rejects_empty_placement(self):
        with pytest.raises(ValueError):
            ScaleDownPlan(group_before=(0, 1), placement={})

    def test_rejects_outside_group(self):
        with pytest.raises(ValueError):
            ScaleDownPlan(group_before=(0, 1), placement={5: 10})

    def test_rejects_negative_tokens(self):
        with pytest.raises(ValueError):
            ScaleDownPlan(group_before=(0,), placement={0: -1})


class TestScaleUpPlan:
    def test_valid_plan(self):
        plan = ScaleUpPlan(
            group_before=(0,), new_instances=(1, 2), masters_after=(0, 1)
        )
        assert plan.group_after == (0, 1, 2)
        assert plan.migration_tokens == 0

    def test_rejects_overlapping_instances(self):
        with pytest.raises(ValueError):
            ScaleUpPlan(group_before=(0,), new_instances=(0,), masters_after=(0,))

    def test_rejects_foreign_masters(self):
        with pytest.raises(ValueError):
            ScaleUpPlan(group_before=(0,), new_instances=(1,), masters_after=(9,))

    def test_rejects_no_masters(self):
        with pytest.raises(ValueError):
            ScaleUpPlan(group_before=(0,), new_instances=(1,), masters_after=())
