"""Tests for mixture-of-experts model support (§8 compatibility)."""

import pytest

from repro.model.flops import decode_flops, prefill_flops
from repro.model.spec import LWM_7B_1M, MIXTRAL_8X7B, ModelSpec


class TestMoESpec:
    def test_mixtral_param_count(self):
        """Mixtral 8x7B holds ~47B parameters total."""
        assert 44e9 < MIXTRAL_8X7B.param_count < 50e9

    def test_mixtral_active_params(self):
        """...but only ~13B are active per token (2 of 8 experts)."""
        assert 12e9 < MIXTRAL_8X7B.active_param_count < 14e9

    def test_dense_model_active_equals_total(self):
        assert LWM_7B_1M.active_param_count == LWM_7B_1M.param_count
        assert not LWM_7B_1M.is_moe

    def test_moe_flops_track_active_experts(self):
        """FLOPs per token for Mixtral sit far below a dense 47B model's."""
        dense_equivalent = ModelSpec(
            name="dense-47b-ish",
            hidden_size=MIXTRAL_8X7B.hidden_size,
            num_layers=MIXTRAL_8X7B.num_layers,
            num_heads=MIXTRAL_8X7B.num_heads,
            num_kv_heads=MIXTRAL_8X7B.num_kv_heads,
            ffn_hidden_size=MIXTRAL_8X7B.ffn_hidden_size * 8,
            vocab_size=MIXTRAL_8X7B.vocab_size,
            context_window=MIXTRAL_8X7B.context_window,
        )
        assert (
            MIXTRAL_8X7B.flops_per_token_linear()
            < 0.4 * dense_equivalent.flops_per_token_linear()
        )

    def test_moe_kv_cache_matches_gqa(self):
        """MoE changes FFN weights, not the KV cache (§8: MoE reduces
        memory footprint relative to a dense model of equal quality)."""
        per_token = MIXTRAL_8X7B.kv_bytes_per_token
        expected = (
            2 * MIXTRAL_8X7B.num_layers
            * MIXTRAL_8X7B.num_kv_heads * MIXTRAL_8X7B.head_dim
            * MIXTRAL_8X7B.dtype_bytes
        )
        assert per_token == expected

    def test_prefill_decode_flops_consistent(self):
        assert prefill_flops(MIXTRAL_8X7B, 1_000) > 0
        assert decode_flops(MIXTRAL_8X7B, 1_000) > 0

    def test_rejects_more_active_than_total_experts(self):
        with pytest.raises(ValueError):
            ModelSpec(
                name="bad", hidden_size=64, num_layers=1, num_heads=4,
                num_kv_heads=4, ffn_hidden_size=128, vocab_size=100,
                context_window=128, num_experts=2, experts_per_token=3,
            )

    def test_rejects_zero_experts(self):
        with pytest.raises(ValueError):
            ModelSpec(
                name="bad", hidden_size=64, num_layers=1, num_heads=4,
                num_kv_heads=4, ffn_hidden_size=128, vocab_size=100,
                context_window=128, num_experts=0,
            )


class TestMoEServing:
    def test_moe_model_serves_end_to_end(self):
        """The whole stack (config, cost model, scheduler) accepts MoE."""
        from repro.config import default_config
        from repro.core.server import LoongServeServer
        from repro.workloads.datasets import SHAREGPT
        from repro.workloads.trace_gen import make_trace

        config = default_config(model=MIXTRAL_8X7B, tensor_parallel=2)
        server = LoongServeServer(config)
        trace = make_trace(SHAREGPT, rate=5.0, num_requests=10, seed=44)
        result = server.run(trace)
        assert len(result.finished_requests) == 10

    def test_moe_weights_shrink_kv_pool(self):
        """Holding attention fixed, the 8-expert weights leave fewer KV
        slots than a single-expert (dense) sibling."""
        from dataclasses import replace

        from repro.config import default_config

        dense_sibling = replace(
            MIXTRAL_8X7B, name="mixtral-dense-sibling",
            num_experts=1, experts_per_token=1,
        )
        dense = default_config(model=dense_sibling, tensor_parallel=2)
        moe = default_config(model=MIXTRAL_8X7B, tensor_parallel=2)
        assert moe.kv_slots_per_instance < dense.kv_slots_per_instance
