"""Property tests: router tie-breaking must be deterministic.

Every routing policy resolves ties down to the replica id, so a router
presented with equal-state replicas (equal free KV, equal outstanding
work, equal prefix match) must always pick the lowest id — and, more
generally, the choice must be a pure function of replica state, not of
replica order or router history.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.router import (
    CacheAffinityRouter,
    LeastKVRouter,
    LeastOutstandingRouter,
    LengthAwareRouter,
)
from tests.conftest import StubReplica, make_request

# Policies that consider the whole fleet for every request; the
# length-aware router partitions replicas into pools first, so its
# tie-break property is stated per pool (see the dedicated test).
WHOLE_FLEET_ROUTERS = [
    LeastOutstandingRouter,
    LeastKVRouter,
    CacheAffinityRouter,
]


replica_states = st.tuples(
    st.integers(min_value=0, max_value=5),      # outstanding requests
    st.integers(min_value=0, max_value=10_000), # outstanding tokens
    st.integers(min_value=0, max_value=10_000), # free KV slots
    st.integers(min_value=0, max_value=2_000),  # prefix match length
)


def build_fleet(states):
    return [
        StubReplica(i, outstanding=o, tokens=t, free=f, match=m)
        for i, (o, t, f, m) in enumerate(states)
    ]


@settings(max_examples=200, deadline=None)
@given(
    states=st.lists(replica_states, min_size=1, max_size=8),
    input_len=st.integers(min_value=1, max_value=20_000),
)
def test_equal_state_ties_break_to_lowest_id(states, input_len):
    """Duplicate every replica state: among exact duplicates, the lower
    replica id must win for every policy."""
    fleet = build_fleet(states + states)  # ids 0..n-1 duplicate n..2n-1
    request = make_request(input_len=input_len)
    for router_cls in WHOLE_FLEET_ROUTERS:
        chosen = router_cls().route(request, fleet, now=0.0)
        duplicate_ids = [
            r.replica_id for r in fleet if r.state() == chosen.state()
        ]
        assert chosen.replica_id == min(duplicate_ids), router_cls.name


@settings(max_examples=200, deadline=None)
@given(
    states=st.lists(replica_states, min_size=2, max_size=8),
    long=st.booleans(),
)
def test_length_aware_ties_break_to_lowest_id_within_pool(states, long):
    """The length-aware router partitions the fleet; within the pool that
    serves the request, equal outstanding-token replicas resolve to the
    lowest id."""
    router = LengthAwareRouter()
    fleet = build_fleet(states)
    boundary = max(1, min(len(fleet) - 1, round(len(fleet) * router.long_fraction)))
    pool = fleet[:boundary] if long else fleet[boundary:]
    input_len = router.long_threshold + 1 if long else 1
    chosen = router.route(make_request(input_len=input_len), fleet, now=0.0)
    assert chosen in pool
    ties = [
        r.replica_id for r in pool
        if r.outstanding_tokens() == chosen.outstanding_tokens()
    ]
    assert chosen.replica_id == min(ties)


@settings(max_examples=200, deadline=None)
@given(
    states=st.lists(replica_states, min_size=2, max_size=8),
    input_len=st.integers(min_value=1, max_value=20_000),
)
def test_choice_is_reproducible_and_history_free(states, input_len):
    """Same state, same request => same replica, on every call, for a
    fresh or reused (stateless) router instance."""
    fleet = build_fleet(states)
    request = make_request(input_len=input_len)
    for router_cls in [*WHOLE_FLEET_ROUTERS, LengthAwareRouter]:
        router = router_cls()
        first = router.route(request, fleet, now=0.0)
        again = router.route(request, fleet, now=0.0)
        fresh = router_cls().route(request, fleet, now=0.0)
        assert first.replica_id == again.replica_id == fresh.replica_id


@settings(max_examples=100, deadline=None)
@given(states=st.lists(replica_states, min_size=1, max_size=8))
def test_all_idle_fleet_routes_to_replica_zero(states):
    """An idle uniform fleet (all probes zero) must resolve to id 0 for
    every whole-fleet policy, and to its pool's first replica for the
    length-aware partitioner."""
    idle = [(0, 0, 0, 0)] * len(states)
    fleet = build_fleet(idle)
    request = make_request(input_len=100)
    for router_cls in WHOLE_FLEET_ROUTERS:
        assert router_cls().route(request, fleet, now=0.0).replica_id == 0
    router = LengthAwareRouter()
    chosen = router.route(request, fleet, now=0.0)
    if len(fleet) == 1:
        assert chosen.replica_id == 0
    else:
        boundary = max(1, min(len(fleet) - 1, round(len(fleet) * router.long_fraction)))
        assert chosen.replica_id == boundary  # first replica of the short pool
