"""Equivalence tests for striped-attention SP prefill and proactive
scale-down — the paper's §4.1 mechanism, verified numerically."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.instance import FunctionalInstance, group_placement
from repro.engine.reference import ReferenceTransformer
from repro.engine.striped import (
    stripe_assignment,
    striped_prefill,
    validate_retention_plan,
)
from repro.engine.weights import TransformerWeights


def make_weights(num_kv_heads: int = 4, seed: int = 0) -> TransformerWeights:
    return TransformerWeights.random(
        hidden_size=32, num_heads=4, num_kv_heads=num_kv_heads, num_layers=2, seed=seed
    )


def make_instances(weights: TransformerWeights, count: int) -> list[FunctionalInstance]:
    return [
        FunctionalInstance(i, weights.num_layers, weights.num_kv_heads, weights.head_dim)
        for i in range(count)
    ]


class TestStripeAssignment:
    def test_partition_is_complete(self):
        stripes = stripe_assignment(10, 3)
        merged = np.sort(np.concatenate(stripes))
        assert np.array_equal(merged, np.arange(10))

    def test_striping_interleaves(self):
        stripes = stripe_assignment(6, 2)
        assert stripes[0].tolist() == [0, 2, 4]
        assert stripes[1].tolist() == [1, 3, 5]

    def test_balanced_within_one(self):
        stripes = stripe_assignment(11, 4)
        sizes = [len(s) for s in stripes]
        assert max(sizes) - min(sizes) <= 1


class TestRetentionPlanValidation:
    def test_must_cover_all_positions(self):
        with pytest.raises(ValueError):
            validate_retention_plan({0: np.arange(5)}, num_tokens=6, group_size=2)

    def test_must_not_duplicate(self):
        with pytest.raises(ValueError):
            validate_retention_plan(
                {0: np.arange(4), 1: np.arange(2, 6)}, num_tokens=6, group_size=2
            )

    def test_rejects_foreign_instance(self):
        with pytest.raises(ValueError):
            validate_retention_plan({7: np.arange(6)}, num_tokens=6, group_size=2)

    def test_accepts_partition(self):
        validate_retention_plan(
            {0: np.arange(3), 1: np.arange(3, 6)}, num_tokens=6, group_size=2
        )


class TestStripedPrefillEquivalence:
    @pytest.mark.parametrize("sp", [1, 2, 3, 4])
    def test_matches_reference(self, sp):
        weights = make_weights()
        reference = ReferenceTransformer(weights)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((17, weights.hidden_size))
        expected, _ = reference.prefill(x)
        instances = make_instances(weights, sp)
        run = striped_prefill(weights, x, instances, request_id=0)
        np.testing.assert_allclose(run.hidden, expected, atol=1e-10)

    @pytest.mark.parametrize("num_kv_heads", [1, 2, 4])
    def test_matches_reference_gqa_mqa(self, num_kv_heads):
        """§6: ESP is compatible with MHA, GQA, and MQA."""
        weights = make_weights(num_kv_heads=num_kv_heads, seed=3)
        reference = ReferenceTransformer(weights)
        rng = np.random.default_rng(2)
        x = rng.standard_normal((12, weights.hidden_size))
        expected, _ = reference.prefill(x)
        run = striped_prefill(weights, x, make_instances(weights, 3), request_id=0)
        np.testing.assert_allclose(run.hidden, expected, atol=1e-10)

    def test_default_retention_is_stripes(self):
        weights = make_weights()
        rng = np.random.default_rng(3)
        x = rng.standard_normal((10, weights.hidden_size))
        instances = make_instances(weights, 2)
        striped_prefill(weights, x, instances, request_id=7)
        np.testing.assert_array_equal(instances[0].positions_held(7), [0, 2, 4, 6, 8])
        np.testing.assert_array_equal(instances[1].positions_held(7), [1, 3, 5, 7, 9])

    def test_rejects_empty_sequence(self):
        weights = make_weights()
        with pytest.raises(ValueError):
            striped_prefill(
                weights,
                np.zeros((0, weights.hidden_size)),
                make_instances(weights, 2),
                request_id=0,
            )


class TestProactiveScaleDown:
    def test_retention_places_exactly_planned_tokens(self):
        weights = make_weights()
        rng = np.random.default_rng(4)
        x = rng.standard_normal((13, weights.hidden_size))
        instances = make_instances(weights, 4)
        plan = {0: np.arange(0, 4), 1: np.arange(4, 13)}
        run = striped_prefill(weights, x, instances, request_id=0, retention_plan=plan)
        np.testing.assert_array_equal(instances[0].positions_held(0), np.arange(0, 4))
        np.testing.assert_array_equal(instances[1].positions_held(0), np.arange(4, 13))
        assert instances[2].tokens_held(0) == 0
        assert instances[3].tokens_held(0) == 0
        assert run.retained == {0: 4, 1: 9}

    def test_zero_extra_communication(self):
        """The §4.1 claim: scale-down adds no ring traffic at all."""
        weights = make_weights()
        rng = np.random.default_rng(5)
        x = rng.standard_normal((16, weights.hidden_size))
        baseline = striped_prefill(
            weights, x, make_instances(weights, 4), request_id=0
        )
        plan = {0: np.arange(0, 8), 1: np.arange(8, 16)}
        scaled = striped_prefill(
            weights, x, make_instances(weights, 4), request_id=0, retention_plan=plan
        )
        assert scaled.ring_sends == baseline.ring_sends

    def test_output_unaffected_by_retention_plan(self):
        weights = make_weights()
        rng = np.random.default_rng(6)
        x = rng.standard_normal((11, weights.hidden_size))
        plain = striped_prefill(weights, x, make_instances(weights, 3), request_id=0)
        plan = {1: np.arange(11)}  # keep everything on one survivor
        scaled = striped_prefill(
            weights, x, make_instances(weights, 3), request_id=0, retention_plan=plan
        )
        np.testing.assert_allclose(plain.hidden, scaled.hidden, atol=1e-12)

    @given(
        num_tokens=st.integers(min_value=2, max_value=24),
        sp=st.integers(min_value=2, max_value=4),
        cut_seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_partition_property(self, num_tokens, sp, cut_seed):
        """Any token partition over any survivor subset is realisable and
        the retained KV matches a reference prefill's KV exactly."""
        weights = make_weights(seed=9)
        rng = np.random.default_rng(cut_seed)
        x = rng.standard_normal((num_tokens, weights.hidden_size))
        survivors = sorted(
            rng.choice(sp, size=rng.integers(1, sp + 1), replace=False).tolist()
        )
        owner = rng.choice(survivors, size=num_tokens)
        plan = {
            s: np.flatnonzero(owner == s) for s in survivors if (owner == s).any()
        }
        if not plan:
            plan = {survivors[0]: np.arange(num_tokens)}
        instances = make_instances(weights, sp)
        striped_prefill(weights, x, instances, request_id=0, retention_plan=plan)

        reference = ReferenceTransformer(weights)
        _, cache = reference.prefill(x)
        placement = group_placement(instances, 0)
        assert sum(placement.values()) == num_tokens
        for instance in instances:
            for layer in range(weights.num_layers):
                shard = instance.shard(0, layer)
                for idx, position in enumerate(shard.positions):
                    np.testing.assert_allclose(
                        shard.k[idx], cache.layers[layer].k[position], atol=1e-10
                    )
                    np.testing.assert_allclose(
                        shard.v[idx], cache.layers[layer].v[position], atol=1e-10
                    )
