"""Tests for metrics: normalised latencies, SLO attainment, histograms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.costmodel.latency import RooflineCostModel
from repro.metrics.latency import summarize_latency
from repro.metrics.slo import IdealLatencyModel, max_rate_under_slo, slo_report
from repro.metrics.summary import (
    request_throughput,
    scale_event_histogram,
    throughput_tokens_per_s,
)
from repro.model.spec import LWM_7B_1M
from repro.types import RequestState, ScalingEvent, ServeResult
from tests.conftest import make_request


def finished_request(input_len=100, output_len=10, arrival=0.0, finish=5.0):
    request = make_request(input_len=input_len, output_len=output_len, arrival=arrival)
    request.prefill_start = arrival + 0.5
    request.prefill_end = arrival + 1.0
    request.finish_time = finish
    request.generated = output_len
    request.state = RequestState.FINISHED
    return request


@pytest.fixture(scope="module")
def ideal() -> IdealLatencyModel:
    cost = RooflineCostModel(cluster=Cluster.homogeneous(8), model=LWM_7B_1M)
    return IdealLatencyModel(cost_model=cost, tensor_parallel=2, max_instances=4)


class TestLatencySummary:
    def test_summary_values(self):
        result = ServeResult(system="x", requests=[finished_request()])
        summary = summarize_latency(result)
        assert summary.per_token == pytest.approx(5.0 / 110)
        assert summary.input_token == pytest.approx(1.0 / 100)
        assert summary.output_token == pytest.approx(4.0 / 10)
        assert summary.finished == 1

    def test_empty_result_infinite(self):
        summary = summarize_latency(ServeResult(system="x", requests=[]))
        assert summary.per_token == float("inf")
        assert summary.completion_rate == 0.0

    def test_unfinished_excluded(self):
        result = ServeResult(
            system="x", requests=[finished_request(), make_request()]
        )
        summary = summarize_latency(result)
        assert summary.finished == 1
        assert summary.total == 2

    def test_p90_at_least_mean_for_skewed(self):
        requests = [finished_request(finish=1.2 + i * 2) for i in range(10)]
        summary = summarize_latency(ServeResult(system="x", requests=requests))
        assert summary.per_token_p90 >= summary.per_token


class TestSLO:
    def test_ideal_latency_scales_with_length(self, ideal):
        short = make_request(input_len=1_000, output_len=10)
        long = make_request(input_len=100_000, output_len=10)
        assert ideal.ideal_latency(long) > ideal.ideal_latency(short)

    def test_deadline_is_scaled(self, ideal):
        request = make_request(input_len=1_000, output_len=10)
        assert ideal.deadline(request, scale=25.0) == pytest.approx(
            25.0 * ideal.ideal_latency(request)
        )

    def test_attainment_counts_misses(self, ideal):
        fast = finished_request(input_len=1_000, output_len=50, finish=2.0)
        slow = finished_request(input_len=1_000, output_len=50, finish=50_000.0)
        report = slo_report(ServeResult(system="x", requests=[fast, slow]), ideal)
        assert report.attained == 1
        assert report.attainment == pytest.approx(0.5)

    def test_aborted_count_as_missed(self, ideal):
        fast = finished_request(input_len=1_000, output_len=50, finish=2.0)
        aborted = make_request()
        result = ServeResult(system="x", requests=[fast], aborted=[aborted])
        report = slo_report(result, ideal)
        assert report.total == 2
        assert report.attainment == pytest.approx(0.5)

    def test_aborted_only_run_attains_nothing(self, ideal):
        result = ServeResult(system="x", requests=[], aborted=[make_request()])
        report = slo_report(result, ideal)
        assert report.total == 1
        assert report.attained == 0
        assert report.attainment == 0.0

    def test_empty_run_attainment_zero(self, ideal):
        report = slo_report(ServeResult(system="x", requests=[]), ideal)
        assert report.total == 0
        assert report.attainment == 0.0

    def test_single_token_output_has_no_decode_component(self, ideal):
        # output_len=1 means zero decode steps: the ideal latency is
        # pure prefill and stays finite/positive.
        one = make_request(input_len=1_000, output_len=1)
        two = make_request(input_len=1_000, output_len=2)
        assert 0.0 < ideal.ideal_latency(one) < ideal.ideal_latency(two)

    @given(
        shorter=st.integers(min_value=1, max_value=50_000),
        delta=st.integers(min_value=1, max_value=50_000),
        output_len=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_deadline_monotone_in_input_len(
        self, ideal, shorter, delta, output_len
    ):
        # A longer prompt can never buy a *tighter* deadline: the 25x
        # no-load SLO shape must be monotone in input length.
        a = make_request(input_len=shorter, output_len=output_len)
        b = make_request(input_len=shorter + delta, output_len=output_len)
        assert ideal.deadline(b) >= ideal.deadline(a)

    def test_max_rate_under_slo_grid_snapped(self):
        rates = [1.0, 2.0, 3.0, 4.0]
        attainments = [1.0, 0.95, 0.80, 0.40]
        assert max_rate_under_slo(
            rates, attainments, target=0.9, interpolate=False
        ) == 2.0

    def test_max_rate_interpolates_the_crossing(self):
        rates = [1.0, 2.0, 3.0, 4.0]
        attainments = [1.0, 0.95, 0.80, 0.40]
        # 0.95 -> 0.80 crosses 0.90 a third of the way from 2.0 to 3.0.
        expected = 2.0 + (0.95 - 0.90) / (0.95 - 0.80) * 1.0
        assert max_rate_under_slo(rates, attainments, target=0.9) == pytest.approx(
            expected
        )

    def test_max_rate_interpolation_between_grid_neighbours(self):
        value = max_rate_under_slo([1.0, 2.0], [1.0, 0.5], target=0.9)
        assert 1.0 < value < 2.0
        assert value == pytest.approx(1.2)

    def test_max_rate_unsorted_sweep_is_order_independent(self):
        rates = [3.0, 1.0, 4.0, 2.0]
        attainments = [0.80, 1.0, 0.40, 0.95]
        assert max_rate_under_slo(rates, attainments, target=0.9) == pytest.approx(
            max_rate_under_slo(
                sorted(rates), [1.0, 0.95, 0.80, 0.40], target=0.9
            )
        )

    def test_max_rate_all_passing_has_nothing_to_interpolate(self):
        assert max_rate_under_slo([1.0, 2.0], [1.0, 0.95], target=0.9) == 2.0

    def test_max_rate_flat_attainment_does_not_extrapolate(self):
        # Attainment equal on both sides of the knee: no meaningful
        # crossing, keep the grid answer.
        assert max_rate_under_slo([1.0, 2.0], [0.9, 0.9], target=0.9) == 2.0

    def test_max_rate_none_qualify(self):
        assert max_rate_under_slo([1.0], [0.5]) == 0.0
        assert max_rate_under_slo([1.0], [0.5], interpolate=False) == 0.0

    def test_max_rate_empty_sweep(self):
        assert max_rate_under_slo([], [], target=0.9) == 0.0
        assert max_rate_under_slo([], [], interpolate=False) == 0.0

    def test_max_rate_misaligned_raises(self):
        with pytest.raises(ValueError):
            max_rate_under_slo([1.0, 2.0], [1.0])


class TestSummaries:
    def test_throughput_tokens(self):
        result = ServeResult(
            system="x", requests=[finished_request(input_len=90, output_len=10)],
            makespan=10.0,
        )
        assert throughput_tokens_per_s(result) == pytest.approx(10.0)

    def test_request_throughput(self):
        result = ServeResult(
            system="x", requests=[finished_request()], makespan=5.0
        )
        assert request_throughput(result) == pytest.approx(0.2)

    def test_zero_makespan(self):
        assert throughput_tokens_per_s(ServeResult(system="x")) == 0.0

    def test_scale_event_histogram_bins(self):
        events = [
            ScalingEvent(time=t, kind="scale_up", group_before=(0,), group_after=(0, 1))
            for t in (1.0, 5.0, 12.0, 25.0)
        ]
        bins = scale_event_histogram(events, "scale_up", bin_seconds=10.0)
        assert bins == [2, 1, 1]

    def test_histogram_respects_until(self):
        events = [
            ScalingEvent(time=1.0, kind="scale_up", group_before=(0,), group_after=(0, 1))
        ]
        bins = scale_event_histogram(events, "scale_up", bin_seconds=10.0, until=45.0)
        assert bins == [1, 0, 0, 0, 0]

    def test_histogram_filters_kind(self):
        events = [
            ScalingEvent(time=1.0, kind="scale_down", group_before=(0, 1), group_after=(0,))
        ]
        assert scale_event_histogram(events, "scale_up", until=10.0) == [0]

    def test_histogram_rejects_bad_bin(self):
        with pytest.raises(ValueError):
            scale_event_histogram([], "scale_up", bin_seconds=0.0)

    def test_histogram_empty_without_until_is_empty(self):
        assert scale_event_histogram([], "scale_up") == []

    def test_histogram_clamps_event_at_horizon(self):
        # An event exactly on the horizon lands in the last bin instead
        # of indexing one past it.
        events = [
            ScalingEvent(time=20.0, kind="scale_up",
                         group_before=(0,), group_after=(0, 1))
        ]
        assert scale_event_histogram(events, "scale_up", bin_seconds=10.0) == [0, 1]
        assert scale_event_histogram(
            events, "scale_up", bin_seconds=10.0, until=15.0
        ) == [0, 1]

    def test_throughput_counts_only_finished(self):
        unfinished = make_request(input_len=50, output_len=10)
        result = ServeResult(
            system="x",
            requests=[finished_request(input_len=90, output_len=10), unfinished],
            makespan=10.0,
        )
        assert throughput_tokens_per_s(result) == pytest.approx(10.0)
        assert request_throughput(result) == pytest.approx(0.1)
