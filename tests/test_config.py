"""Tests for system configuration and derived capacities."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.gpu import H100_80GB
from repro.config import SchedulerConfig, SystemConfig, default_config
from repro.model.spec import LLAMA2_70B, LWM_7B_1M


class TestSystemConfig:
    def test_default_is_paper_testbed(self):
        config = default_config()
        assert config.cluster.num_gpus == 8
        assert config.tensor_parallel == 2
        assert config.max_sequence_parallel == 4
        assert config.num_instances == 4

    def test_kv_slots_match_memory_arithmetic(self):
        config = default_config()
        gpu_bytes = config.cluster.gpu.memory_bytes * config.tensor_parallel
        budget = (gpu_bytes - config.model.weight_bytes) * config.kv_memory_fraction
        expected = int(budget // config.model.kv_bytes_per_token)
        assert config.kv_slots_per_instance == expected

    def test_vllm_layout_has_more_total_slots(self):
        """TP=8 stores one weight replica; TP=2 x 4 instances store four.
        The replication cost is real KV capacity (§2.3 trade-off)."""
        loong = default_config(tensor_parallel=2)
        vllm = default_config(tensor_parallel=8)
        assert vllm.total_kv_slots > loong.total_kv_slots

    def test_rejects_oversubscribed_parallelism(self):
        cluster = Cluster.homogeneous(num_gpus=8)
        with pytest.raises(ValueError):
            SystemConfig(
                cluster=cluster, model=LWM_7B_1M,
                tensor_parallel=4, max_sequence_parallel=4,
            )

    def test_rejects_model_too_big_for_instance(self):
        cluster = Cluster.homogeneous(num_gpus=8)
        config = SystemConfig(
            cluster=cluster, model=LLAMA2_70B,
            tensor_parallel=1, max_sequence_parallel=8,
        )
        with pytest.raises(ValueError):
            _ = config.kv_slots_per_instance

    def test_with_parallelism_copy(self):
        config = default_config()
        other = config.with_parallelism(4, 2)
        assert other.tensor_parallel == 4
        assert other.num_instances == 2
        assert config.tensor_parallel == 2  # original untouched

    def test_multi_node_defaults(self):
        config = default_config(num_gpus=16, gpus_per_node=8)
        assert config.cluster.num_nodes == 2
        assert config.max_sequence_parallel == 8
        assert config.num_instances == 8

    def test_alternative_gpu(self):
        config = default_config(gpu=H100_80GB)
        assert config.cluster.gpu.name == "H100-80GB"

    def test_scheduler_config_frozen(self):
        config = SchedulerConfig()
        with pytest.raises(AttributeError):
            config.max_batch_size = 5  # type: ignore[misc]
