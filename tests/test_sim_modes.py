"""Simulation modes: the optimised discrete path stays bit-identical and
hybrid fluid mode tracks it within tolerance.

The golden-signature gates themselves live with their subsystems
(``test_elastic_fleet.TestStaticGate``, ``test_faults``, ``test_qos``);
this module covers the mode switch, the arrival-grouping fast path, the
fluid stepper's closed-form algebra, and the hybrid-vs-discrete
aggregate tolerances on the seeded Mixed / sessions / QoS traces.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SchedulerConfig, default_config
from repro.core.server import LoongServeServer
from repro.qos import QoSPolicy
from repro.sessions import make_session_trace
from repro.sim.fluid import FluidStepper, _max_iterations_within, _stretch_time
from repro.types import Request
from repro.workloads.datasets import MIXED
from repro.workloads.trace_gen import clone_requests, make_trace


def _signature(requests):
    signature = sorted(
        (r.input_len, r.output_len, round(r.arrival_time, 9),
         round(r.prefill_end, 9), round(r.first_token_time, 9),
         round(r.finish_time, 9), r.preemptions)
        for r in requests if r.finished
    )
    return hashlib.md5(repr(signature).encode()).hexdigest()


def _run(mode: str, trace, qos: bool = False):
    config = default_config(scheduler=SchedulerConfig(sim_mode=mode))
    server = LoongServeServer(config)
    if qos:
        server.qos = QoSPolicy.for_config(config, server.cost_model)
    result = server.run(clone_requests(trace))
    return result, server


def _steady_trace(num_requests=600, cluster=48, interval=8.0, output_len=300):
    return [
        Request(request_id=i, input_len=512, output_len=output_len,
                arrival_time=(i // cluster) * interval)
        for i in range(num_requests)
    ]


class TestModeSwitch:
    def test_default_is_discrete_with_no_stepper(self):
        assert SchedulerConfig().sim_mode == "discrete"
        server = LoongServeServer(default_config())
        assert server._fluid is None

    def test_hybrid_arms_the_stepper(self):
        config = default_config(scheduler=SchedulerConfig(sim_mode="hybrid"))
        server = LoongServeServer(config)
        assert isinstance(server._fluid, FluidStepper)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="sim_mode"):
            SchedulerConfig(sim_mode="continuous")

    def test_explicit_discrete_matches_default_bit_for_bit(self):
        trace = make_trace(MIXED, rate=4.0, num_requests=25, seed=7)
        default_result, _ = _run("discrete", trace)
        explicit = LoongServeServer(default_config())
        explicit_result = explicit.run(clone_requests(trace))
        assert _signature(default_result.requests) == _signature(
            explicit_result.requests
        )


class TestArrivalGrouping:
    """``run()`` coalesces same-timestamp arrivals into one event; the
    outcome must be bit-identical to per-request arrival events."""

    def _grouped_and_ungrouped(self, trace):
        grouped_server = LoongServeServer(default_config())
        grouped = grouped_server.run(clone_requests(trace))

        ungrouped_server = LoongServeServer(default_config())
        copies = clone_requests(trace)
        ungrouped_server._reset()
        ungrouped_server._all_requests = list(copies)
        for request in copies:
            ungrouped_server.sim.call_at(
                request.arrival_time,
                ungrouped_server._make_arrival(request),
                label="arrival",
            )
        ungrouped_server.sim.run_until_idle()
        ungrouped = ungrouped_server._collect_result()
        return grouped, ungrouped, grouped_server, ungrouped_server

    def test_clustered_timestamps_identical(self):
        trace = _steady_trace(num_requests=200, cluster=25, interval=5.0,
                              output_len=40)
        grouped, ungrouped, gs, us = self._grouped_and_ungrouped(trace)
        assert _signature(grouped.requests) == _signature(ungrouped.requests)
        assert grouped.makespan == ungrouped.makespan
        # The grouping is the whole point: fewer arrival events fired.
        assert gs.sim.events_processed < us.sim.events_processed

    def test_distinct_timestamps_identical(self):
        trace = make_trace(MIXED, rate=4.0, num_requests=30, seed=7)
        grouped, ungrouped, gs, us = self._grouped_and_ungrouped(trace)
        assert _signature(grouped.requests) == _signature(ungrouped.requests)
        # Poisson arrivals never tie, so grouping changes nothing at all.
        assert gs.sim.events_processed == us.sim.events_processed


class TestHybridTolerance:
    """Hybrid is an approximation; its aggregates must stay close to the
    discrete reference on the seeded traces the suite gates on."""

    def test_steady_trace_matches_tightly(self):
        trace = _steady_trace()
        discrete, ds = _run("discrete", trace)
        hybrid, hs = _run("hybrid", trace)
        d_tokens = sum(r.generated for r in discrete.requests if r.finished)
        h_tokens = sum(r.generated for r in hybrid.requests if r.finished)
        assert h_tokens == d_tokens
        assert abs(hybrid.makespan - discrete.makespan) <= 0.02 * discrete.makespan
        assert hs.sim.events_processed <= ds.sim.events_processed / 5
        assert hs._fluid.windows > 0

    def test_mixed_trace_within_tolerance(self):
        trace = make_trace(MIXED, rate=4.0, num_requests=60, seed=7)
        discrete, _ = _run("discrete", trace)
        hybrid, _ = _run("hybrid", trace)
        d_fin = [r for r in discrete.requests if r.finished]
        h_fin = [r for r in hybrid.requests if r.finished]
        assert len(h_fin) == len(d_fin)
        assert sum(r.generated for r in h_fin) == sum(r.generated for r in d_fin)
        assert abs(hybrid.makespan - discrete.makespan) <= 0.15 * discrete.makespan
        d_lat = sum(r.end_to_end_latency for r in d_fin) / len(d_fin)
        h_lat = sum(r.end_to_end_latency for r in h_fin) / len(h_fin)
        assert abs(h_lat - d_lat) <= 0.25 * d_lat

    def test_sessions_trace_within_tolerance(self):
        trace = make_session_trace(rate=0.8, num_sessions=10, seed=5)
        discrete, _ = _run("discrete", trace)
        hybrid, _ = _run("hybrid", trace)
        d_fin = [r for r in discrete.requests if r.finished]
        h_fin = [r for r in hybrid.requests if r.finished]
        assert len(h_fin) == len(d_fin)
        assert sum(r.generated for r in h_fin) == sum(r.generated for r in d_fin)
        assert abs(hybrid.makespan - discrete.makespan) <= 0.15 * discrete.makespan

    def test_qos_trace_attainment_within_tolerance(self):
        from repro.experiments.qos import make_qos_trace

        trace = make_qos_trace(scale=0.25)
        discrete, _ = _run("discrete", trace, qos=True)
        hybrid, _ = _run("hybrid", trace, qos=True)
        assert discrete.qos_stats is not None and hybrid.qos_stats is not None
        for cls, counters in discrete.qos_stats.items():
            submitted = counters.get("submitted", 0)
            if submitted == 0:
                continue
            d_att = counters.get("attained", 0) / submitted
            h_counters = hybrid.qos_stats.get(cls, {})
            h_submitted = h_counters.get("submitted", 0) or 1
            h_att = h_counters.get("attained", 0) / h_submitted
            assert abs(h_att - d_att) <= 0.15, (
                f"{cls}: hybrid attainment {h_att:.3f} vs discrete {d_att:.3f}"
            )
        assert abs(hybrid.makespan - discrete.makespan) <= 0.15 * discrete.makespan

    @settings(max_examples=5, deadline=None)
    @given(
        cluster=st.integers(min_value=16, max_value=64),
        output_len=st.integers(min_value=100, max_value=500),
        interval=st.floats(min_value=4.0, max_value=12.0),
    )
    def test_steady_family_tokens_exact_makespan_close(
        self, cluster, output_len, interval
    ):
        trace = _steady_trace(num_requests=300, cluster=cluster,
                              interval=interval, output_len=output_len)
        discrete, _ = _run("discrete", trace)
        hybrid, _ = _run("hybrid", trace)
        d_tokens = sum(r.generated for r in discrete.requests if r.finished)
        h_tokens = sum(r.generated for r in hybrid.requests if r.finished)
        assert h_tokens == d_tokens
        assert abs(hybrid.makespan - discrete.makespan) <= 0.05 * discrete.makespan


class TestFluidAlgebra:
    @given(
        k=st.integers(min_value=1, max_value=2_000),
        d_start=st.floats(min_value=1e-4, max_value=1.0),
        slope=st.floats(min_value=0.0, max_value=1e-3),
    )
    @settings(max_examples=50, deadline=None)
    def test_stretch_time_is_the_trapezoid_sum(self, k, d_start, slope):
        direct = sum(d_start + slope * i for i in range(k))
        assert _stretch_time(k, d_start, slope) == pytest.approx(direct, rel=1e-9)

    @given(
        budget=st.floats(min_value=1e-3, max_value=100.0),
        d_start=st.floats(min_value=1e-4, max_value=0.5),
        slope=st.floats(min_value=0.0, max_value=1e-2),
        cap=st.integers(min_value=1, max_value=100_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_max_iterations_is_the_stretch_inverse(
        self, budget, d_start, slope, cap
    ):
        k = _max_iterations_within(budget, d_start, slope, cap)
        assert 0 <= k <= cap
        if k >= 1:
            assert _stretch_time(k, d_start, slope) <= budget * (1 + 1e-9)
        if k < cap:
            assert _stretch_time(k + 1, d_start, slope) >= budget * (1 - 1e-9)

    def test_zero_budget_yields_no_iterations(self):
        assert _max_iterations_within(0.0, 0.01, 0.0, 100) == 0
        assert _max_iterations_within(-1.0, 0.01, 0.0, 100) == 0


class TestFluidWindows:
    def test_windows_absorb_most_decode_iterations(self):
        trace = _steady_trace(num_requests=500)
        _, ds = _run("discrete", trace)
        _, hs = _run("hybrid", trace)
        stepper = hs._fluid
        assert stepper.windows > 0
        # Most of the discrete run's events are decode iterations, and
        # the windows soak up the bulk of them.  (The counts need not
        # reconcile exactly: windows freeze batch membership, so hybrid
        # runs fewer, larger batches than the discrete reference.)
        assert stepper.iterations_absorbed >= 0.5 * ds.sim.events_processed
        assert ds.sim.events_processed >= 5 * hs.sim.events_processed

    def test_kv_fully_released_after_hybrid_run(self):
        trace = _steady_trace(num_requests=300)
        _, server = _run("hybrid", trace)
        assert server.pool.total_free == server.config.total_kv_slots

    def test_no_window_without_ready_decode_batches(self):
        # Backlog alone no longer disengages fluid mode (PR 8), but with
        # nothing decoding there is still nothing to advance.
        config = default_config(scheduler=SchedulerConfig(sim_mode="hybrid"))
        server = LoongServeServer(config)
        server._reset()
        server.pending.append(
            Request(request_id=0, input_len=8, output_len=8, arrival_time=0.0)
        )
        assert server._fluid.try_window() is False


def _backlogged_trace(num_requests=80, input_len=1024, output_len=300):
    """Everything arrives at t=0: admission is memory-gated, so the
    pending queue stays deep while the first cohorts decode."""
    return [
        Request(request_id=i, input_len=input_len, output_len=output_len,
                arrival_time=0.0)
        for i in range(num_requests)
    ]


class TestBacklogWindows:
    """Fluid windows under a non-empty pending queue (PR 8)."""

    def test_windows_launch_while_queue_is_backlogged(self, monkeypatch):
        # Patch the class: ``run()`` rebuilds the stepper in ``_reset``.
        original = FluidStepper.try_window
        backlog_at_launch = []

        def spy(stepper):
            before = stepper.windows
            engaged = original(stepper)
            if engaged and stepper.windows > before and stepper.server.pending:
                backlog_at_launch.append(len(stepper.server.pending))
            return engaged

        monkeypatch.setattr(FluidStepper, "try_window", spy)
        _run("hybrid", _backlogged_trace())
        assert backlog_at_launch, (
            "no fluid window launched while requests were queued — the "
            "backlog path has disengaged"
        )

    def test_backlogged_tokens_exact_and_makespan_bounded(self):
        trace = _backlogged_trace()
        discrete, ds = _run("discrete", trace)
        hybrid, hs = _run("hybrid", trace)
        d_fin = [r for r in discrete.requests if r.finished]
        h_fin = [r for r in hybrid.requests if r.finished]
        assert len(h_fin) == len(d_fin)
        assert sum(r.generated for r in h_fin) == sum(r.generated for r in d_fin)
        assert abs(hybrid.makespan - discrete.makespan) <= 0.15 * discrete.makespan
        assert hs._fluid.windows > 0
        assert hs.sim.events_processed < ds.sim.events_processed

    def test_admission_horizon_infinite_without_qos_preemption(self):
        config = default_config(scheduler=SchedulerConfig(sim_mode="hybrid"))
        server = LoongServeServer(config)
        server._reset()
        server.pending.append(
            Request(request_id=0, input_len=8, output_len=8, arrival_time=0.0)
        )
        assert server._fluid._admission_horizon(1.0) == float("inf")
        server.qos = QoSPolicy.for_config(config, server.cost_model,
                                          preemption=False)
        assert server._fluid._admission_horizon(1.0) == float("inf")

    def test_admission_horizon_prices_the_slack_crossing(self):
        config = default_config(scheduler=SchedulerConfig(sim_mode="hybrid"))
        server = LoongServeServer(config)
        server.qos = QoSPolicy.for_config(config, server.cost_model)
        server._reset()
        top = Request(request_id=0, input_len=64, output_len=32,
                      arrival_time=0.0, qos="interactive")
        top.deadline = 30.0
        lower = Request(request_id=1, input_len=64, output_len=32,
                        arrival_time=0.0, qos="batch")
        lower.deadline = 2.0  # urgent but not top-tier: never preempts
        server.pending.extend([top, lower])
        now = 5.0
        threshold = server.qos.preempt_slack_fraction * (
            top.deadline - top.arrival_time
        )
        expected = now + server.qos.slack(top, now) - threshold
        assert server._fluid._admission_horizon(now) == pytest.approx(expected)

    @settings(max_examples=5, deadline=None)
    @given(
        num_requests=st.integers(min_value=40, max_value=100),
        output_len=st.integers(min_value=100, max_value=300),
        stagger=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_backlogged_family_tokens_exact_makespan_bounded(
        self, num_requests, output_len, stagger
    ):
        trace = [
            Request(request_id=i, input_len=512, output_len=output_len,
                    arrival_time=(i % 8) * stagger)
            for i in range(num_requests)
        ]
        discrete, _ = _run("discrete", trace)
        hybrid, _ = _run("hybrid", trace)
        d_tokens = sum(r.generated for r in discrete.requests if r.finished)
        h_tokens = sum(r.generated for r in hybrid.requests if r.finished)
        assert h_tokens == d_tokens
        assert abs(hybrid.makespan - discrete.makespan) <= 0.15 * discrete.makespan


class TestKVWindowShrink:
    """The window launcher must shrink to the pool's live budget instead
    of overrunning ``_bulk_extend``'s free-slot invariant (PR 8 fix)."""

    def test_planned_appends_counts_finishing_requests_once_less(self):
        from types import SimpleNamespace

        batch = SimpleNamespace(requests=[
            SimpleNamespace(output_len=100, generated=10),   # survives: n
            SimpleNamespace(output_len=100, generated=95),   # finishes at 5: n-1
            SimpleNamespace(output_len=100, generated=100),  # done: n-1
        ])
        assert FluidStepper._planned_appends(batch, 5) == 5 + 4 + 4
        # At n=1 the middle request (5 remaining) no longer finishes
        # inside the window, so it appends the full n.
        assert FluidStepper._planned_appends(batch, 1) == 1 + 1 + 0

    def test_launch_shrinks_to_the_live_kv_budget(self, monkeypatch):
        """Starve the pool right before each launch: the window must
        shrink (or skip) deterministically, never raise, and the run
        must still finish every request."""
        original = FluidStepper._launch
        sentinel = 10**9
        squeezed = []

        def starving_launch(stepper, final, now):
            pool = stepper.server.pool
            batch = final[0][0]
            ids = list(batch.instance_ids)
            free = pool.free_on(ids)
            # Leave roughly one iteration of headroom — far less than
            # the n the planner just sized against the pre-squeeze pool.
            hold = max(0, free - 2 * batch.batch_size)
            taken = 0
            for instance_id in ids:
                take = min(hold - taken, pool.pools[instance_id].free)
                if take > 0:
                    pool.extend(sentinel, instance_id, take)
                    taken += take
                if taken >= hold:
                    break
            if taken:
                squeezed.append(taken)
            try:
                return original(stepper, final, now)
            finally:
                pool.evict(sentinel)

        monkeypatch.setattr(FluidStepper, "_launch", starving_launch)
        trace = _steady_trace(num_requests=120, cluster=24, interval=8.0,
                              output_len=200)
        result, server = _run("hybrid", trace)
        assert squeezed, "starvation never applied — test setup is broken"
        assert all(r.finished for r in result.requests)
        assert server.pool.total_free == server.config.total_kv_slots
