"""Tests for the KV cache substrate: pools, unified view, migration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvcache.migration import plan_eviction_migration
from repro.kvcache.pool import InstancePool, PoolExhaustedError
from repro.kvcache.unified import UnifiedKVPool


class TestInstancePool:
    def test_allocate_and_release(self):
        pool = InstancePool(instance_id=0, capacity=100)
        pool.allocate(1, 40)
        assert pool.used == 40
        assert pool.free == 60
        assert pool.release(1) == 40
        assert pool.free == 100

    def test_exhaustion_raises(self):
        pool = InstancePool(instance_id=0, capacity=10)
        with pytest.raises(PoolExhaustedError):
            pool.allocate(1, 11)

    def test_partial_release(self):
        pool = InstancePool(instance_id=0, capacity=100)
        pool.allocate(1, 50)
        assert pool.release(1, 20) == 20
        assert pool.held_by(1) == 30

    def test_release_unknown_request_is_zero(self):
        pool = InstancePool(instance_id=0, capacity=10)
        assert pool.release(99) == 0

    def test_incremental_allocation(self):
        pool = InstancePool(instance_id=0, capacity=100)
        pool.allocate(1, 10)
        pool.allocate(1, 5)
        assert pool.held_by(1) == 15

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            InstancePool(instance_id=0, capacity=0)

    @given(allocs=st.lists(st.integers(min_value=1, max_value=30), max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_conservation_property(self, allocs):
        """used + free == capacity under any allocation sequence."""
        pool = InstancePool(instance_id=0, capacity=500)
        for rid, n in enumerate(allocs):
            try:
                pool.allocate(rid, n)
            except PoolExhaustedError:
                pass
            assert pool.used + pool.free == 500

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["alloc", "release", "release_all"]),
                st.integers(min_value=0, max_value=5),   # request id
                st.integers(min_value=0, max_value=40),  # token count
            ),
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_used_counter_matches_ownership_map(self, ops):
        """The incremental ``used`` counter (kept because ``used`` sits on
        the hot scheduling path) must track sum(_owned) under any mix of
        allocate / partial release / full release / release_all."""
        pool = InstancePool(instance_id=0, capacity=300)
        for op, rid, n in ops:
            if op == "alloc":
                try:
                    pool.allocate(rid, n)
                except PoolExhaustedError:
                    pass
            elif op == "release":
                pool.release(rid, n if n % 2 else None)
            else:
                pool.release_all()
            assert pool.used == sum(pool.snapshot().values())
            assert pool.used + pool.free == pool.capacity

    def test_post_init_seeds_counter_from_preloaded_map(self):
        pool = InstancePool(instance_id=0, capacity=100, _owned={1: 30, 2: 12})
        assert pool.used == 42
        assert pool.free == 58


class TestUnifiedKVPool:
    def _pool(self) -> UnifiedKVPool:
        return UnifiedKVPool.create(num_instances=4, slots_per_instance=100)

    def test_capacity_totals(self):
        pool = self._pool()
        assert pool.total_capacity == 400
        assert pool.total_free == 400

    def test_place_spanning_instances(self):
        pool = self._pool()
        pool.place(1, {0: 80, 1: 80})
        assert pool.tokens_of(1) == 160
        assert pool.instances_of(1) == [0, 1]

    def test_place_rolls_back_on_failure(self):
        pool = self._pool()
        pool.place(1, {0: 90})
        with pytest.raises(PoolExhaustedError):
            pool.place(2, {0: 50, 1: 50})
        assert pool.pools[1].used == 0  # rollback freed instance 1
        assert pool.tokens_of(2) == 0

    def test_figure4_fragmentation_scenario(self):
        """Figure 4: six free slots spread out; unified fits, grouped not."""
        pool = UnifiedKVPool.create(num_instances=3, slots_per_instance=2)
        assert pool.can_fit_unified(6)
        assert not pool.can_fit_grouped(6)
        assert pool.can_fit_grouped(2)

    def test_extend_appends_tokens(self):
        pool = self._pool()
        pool.place(1, {0: 10})
        pool.extend(1, 2, 3)
        assert pool.placement_of(1) == {0: 10, 2: 3}

    def test_evict_frees_everything(self):
        pool = self._pool()
        pool.place(1, {0: 50, 3: 20})
        assert pool.evict(1) == 70
        assert pool.total_free == 400
        assert pool.placement_of(1) == {}

    def test_move_bookkeeping(self):
        pool = self._pool()
        pool.place(1, {0: 50})
        pool.move(1, 0, 2, 30)
        assert pool.placement_of(1) == {0: 20, 2: 30}

    def test_move_more_than_held_raises(self):
        pool = self._pool()
        pool.place(1, {0: 10})
        with pytest.raises(ValueError):
            pool.move(1, 0, 1, 20)

    def test_double_place_rejected(self):
        pool = self._pool()
        pool.place(1, {0: 10})
        with pytest.raises(ValueError):
            pool.place(1, {1: 10})

    def test_fragmentation_metric(self):
        pool = UnifiedKVPool.create(num_instances=2, slots_per_instance=10)
        assert pool.fragmentation() == pytest.approx(0.5)
        pool.place(1, {0: 10})
        assert pool.fragmentation() == pytest.approx(1.0)

    @given(
        tokens=st.integers(min_value=0, max_value=380),
        used=st.lists(
            st.integers(min_value=0, max_value=90), min_size=4, max_size=4
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_balanced_placement_property(self, tokens, used):
        """Balanced placement always fits when total capacity suffices and
        never overflows any instance."""
        pool = UnifiedKVPool.create(num_instances=4, slots_per_instance=100)
        for idx, amount in enumerate(used):
            if amount:
                pool.place(1000 + idx, {idx: amount})
        if tokens > pool.total_free:
            with pytest.raises(PoolExhaustedError):
                pool.balanced_placement(tokens, [0, 1, 2, 3])
            return
        placement = pool.balanced_placement(tokens, [0, 1, 2, 3])
        assert sum(placement.values()) == tokens
        for instance_id, count in placement.items():
            assert count <= pool.pools[instance_id].free


class TestMigrationPlanning:
    def test_plan_moves_everything(self):
        pool = UnifiedKVPool.create(num_instances=3, slots_per_instance=100)
        pool.place(1, {0: 40})
        pool.place(2, {0: 30})
        plan = plan_eviction_migration(pool, vacate_instance=0, target_instances=[1, 2])
        assert plan is not None
        assert plan.total_tokens == 70
        plan.apply(pool)
        assert pool.pools[0].used == 0
        assert pool.tokens_of(1) == 40
        assert pool.tokens_of(2) == 30

    def test_plan_none_when_targets_too_small(self):
        pool = UnifiedKVPool.create(num_instances=2, slots_per_instance=100)
        pool.place(1, {0: 80})
        pool.place(2, {1: 50})
        plan = plan_eviction_migration(pool, vacate_instance=0, target_instances=[1])
        assert plan is None

    def test_empty_source_gives_empty_plan(self):
        pool = UnifiedKVPool.create(num_instances=2, slots_per_instance=10)
        plan = plan_eviction_migration(pool, vacate_instance=0, target_instances=[1])
        assert plan is not None and plan.is_empty()

    def test_plan_prefers_most_free_target(self):
        pool = UnifiedKVPool.create(num_instances=3, slots_per_instance=100)
        pool.place(1, {0: 10})
        pool.place(2, {1: 90})  # instance 1 nearly full
        plan = plan_eviction_migration(pool, vacate_instance=0, target_instances=[1, 2])
        assert plan is not None
        assert plan.steps[0].dst == 2

    def test_split_across_targets(self):
        pool = UnifiedKVPool.create(num_instances=3, slots_per_instance=100)
        pool.place(1, {0: 100})
        pool.place(2, {1: 40})
        pool.place(3, {2: 40})
        plan = plan_eviction_migration(pool, vacate_instance=0, target_instances=[1, 2])
        assert plan is not None
        plan.apply(pool)
        assert pool.pools[0].used == 0
        assert sum(pool.placement_of(1).values()) == 100
