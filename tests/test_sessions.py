"""Tests for multi-turn session serving: workload generation, scheduler
integration of the prefix cache, and cache-affinity fleet routing."""

import pytest

from repro.baselines.no_scaleup import build_loongserve
from repro.config import SchedulerConfig
from repro.experiments.systems import make_fleet, make_system
from repro.metrics.latency import summarize_latency
from repro.sessions import SESSIONS, SessionSpec, make_session_trace
from repro.workloads.serialization import records_to_trace, trace_to_records
from repro.workloads.trace_gen import clone_requests


def serve_sessions(trace, prefix_cache=True):
    scheduler = SchedulerConfig(enable_prefix_cache=prefix_cache)
    server = build_loongserve(scheduler=scheduler)
    return server.run(clone_requests(trace))


class TestSessionTrace:
    def test_turns_chain_token_prefixes(self):
        trace = make_session_trace(rate=0.5, num_sessions=8, seed=1)
        by_session = {}
        for request in trace:
            by_session.setdefault(request.session_id, []).append(request)
        multi = [s for s in by_session.values() if len(s) > 1]
        assert multi, "sampler must produce multi-turn sessions"
        for session in by_session.values():
            session.sort(key=lambda r: r.turn)
            assert [r.turn for r in session] == list(range(len(session)))
            for prev, nxt in zip(session, session[1:]):
                expected = prev.token_ids + prev.output_token_ids
                assert nxt.token_ids[: len(expected)] == expected
                assert nxt.input_len > prev.input_len
                assert nxt.arrival_time > prev.arrival_time

    def test_trace_sorted_and_lengths_consistent(self):
        trace = make_session_trace(rate=1.0, num_sessions=10, seed=2)
        arrivals = [r.arrival_time for r in trace]
        assert arrivals == sorted(arrivals)
        for request in trace:
            assert len(request.token_ids) == request.input_len
            assert request.input_len <= SESSIONS.max_context_len

    def test_trace_is_reproducible(self):
        a = make_session_trace(rate=0.5, num_sessions=5, seed=9)
        b = make_session_trace(rate=0.5, num_sessions=5, seed=9)
        assert [(r.input_len, r.output_len, r.token_ids) for r in a] == [
            (r.input_len, r.output_len, r.token_ids) for r in b
        ]

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SessionSpec(mean_turns=0.5)
        with pytest.raises(ValueError):
            SessionSpec(max_turns=0)

    def test_clone_preserves_session_fields(self):
        trace = make_session_trace(rate=0.5, num_sessions=3, seed=4)
        clones = clone_requests(trace)
        for original, clone in zip(trace, clones):
            assert clone.session_id == original.session_id
            assert clone.turn == original.turn
            assert clone.token_ids == original.token_ids
            assert clone.output_token_ids == original.output_token_ids
            assert clone.cached_prefix_len == 0

    def test_serialization_round_trip(self):
        trace = make_session_trace(rate=0.5, num_sessions=3, seed=5)
        restored = records_to_trace(trace_to_records(trace))
        assert [(r.session_id, r.turn, r.token_ids) for r in restored] == [
            (r.session_id, r.turn, r.token_ids) for r in trace
        ]

    def test_single_turn_records_stay_lean(self):
        from repro.workloads.datasets import SHAREGPT
        from repro.workloads.trace_gen import make_trace

        trace = make_trace(SHAREGPT, rate=5.0, num_requests=3, seed=6)
        for record in trace_to_records(trace):
            assert "session_id" not in record
            assert "token_ids" not in record


class TestServerIntegration:
    def test_prefix_cache_hits_on_follow_up_turns(self):
        trace = make_session_trace(rate=0.5, num_sessions=12, seed=3)
        result = serve_sessions(trace)
        assert len(result.finished_requests) == len(trace)
        stats = result.cache_stats
        follow_ups = sum(1 for r in trace if r.turn > 0)
        assert stats["hits"] == follow_ups
        assert stats["hit_tokens"] > 0
        assert stats["miss_tokens"] > 0

    def test_cached_run_is_faster_and_same_outputs(self):
        trace = make_session_trace(rate=0.5, num_sessions=12, seed=3)
        cached = serve_sessions(trace, prefix_cache=True)
        plain = serve_sessions(trace, prefix_cache=False)
        assert plain.cache_stats is None
        assert len(cached.finished_requests) == len(plain.finished_requests)
        fast = summarize_latency(cached)
        slow = summarize_latency(plain)
        assert fast.input_token < slow.input_token

    def test_cache_disabled_is_bit_identical_on_single_turn(self):
        """Acceptance: with the cache disabled (the default), single-turn
        serving must reproduce pre-sessions behaviour exactly.

        The golden hash below is the per-request timeline signature of
        this exact run recorded on the pre-sessions build (request ids
        are excluded — they depend on test execution order).  If it ever
        changes, cache-off scheduling behaviour changed: only update the
        hash for an *intentional* scheduling change.
        """
        import hashlib

        from repro.workloads.datasets import MIXED
        from repro.workloads.trace_gen import make_trace

        trace = make_trace(MIXED, rate=4.0, num_requests=30, seed=7)
        result = make_system("loongserve", requests=trace).run(clone_requests(trace))
        signature = sorted(
            (r.input_len, r.output_len, round(r.arrival_time, 9),
             round(r.prefill_end, 9), round(r.first_token_time, 9),
             round(r.finish_time, 9), r.preemptions)
            for r in result.requests
        )
        digest = hashlib.md5(repr(signature).encode()).hexdigest()
        assert digest == "7dca6baf3a5d9ecd59c2023aabf9c15b"
        assert result.cache_stats is None

    def test_cache_enabled_single_turn_trace_changes_nothing(self):
        """Token-less requests bypass the cache entirely, so enabling it
        on a single-turn trace is also behaviour-preserving."""
        from repro.workloads.datasets import SHAREGPT
        from repro.workloads.trace_gen import make_trace

        trace = make_trace(SHAREGPT, rate=8.0, num_requests=25, seed=8)
        cached = serve_sessions(trace, prefix_cache=True)
        plain = serve_sessions(trace, prefix_cache=False)
        sig = lambda res: [  # noqa: E731
            (r.request_id, r.prefill_end, r.finish_time) for r in res.requests
        ]
        assert sig(cached) == sig(plain)
        assert cached.cache_stats["hits"] == 0
        assert cached.cache_stats["inserted_tokens"] == 0

    def test_pool_drains_after_eviction_pressure(self):
        """Cache extents must yield to live requests under pool pressure."""
        spec = SessionSpec(mean_turns=3.0, think_time_mean_s=2.0)
        trace = make_session_trace(spec, rate=2.0, num_sessions=20, seed=10)
        result = serve_sessions(trace)
        assert len(result.finished_requests) + len(result.aborted) == len(trace)


class TestAffinityFleet:
    def test_affinity_beats_round_robin_on_sessions(self):
        """Acceptance: on the Sessions workload, cache-affinity routing
        reports a positive prefix hit rate and strictly lower mean
        per-token prefill latency than round-robin at the same rate."""
        trace = make_session_trace(rate=0.8, num_sessions=16, seed=11)

        def run(router):
            fleet = make_fleet(
                "loongserve", replicas=4, router=router,
                requests=trace, prefix_cache=True,
            )
            return fleet.run(clone_requests(trace))

        affinity = run("affinity")
        round_robin = run("round-robin")
        assert len(affinity.finished_requests) == len(trace)

        stats = affinity.cache_stats
        hit_rate = stats["hit_tokens"] / (stats["hit_tokens"] + stats["miss_tokens"])
        assert hit_rate > 0
        rr_stats = round_robin.cache_stats
        rr_hit_rate = rr_stats["hit_tokens"] / (
            rr_stats["hit_tokens"] + rr_stats["miss_tokens"]
        )
        assert hit_rate > rr_hit_rate

        assert (
            summarize_latency(affinity).input_token
            < summarize_latency(round_robin).input_token
        )

    def test_fleet_report_carries_cache_columns(self):
        from repro.metrics.fleet import fleet_load_report

        trace = make_session_trace(rate=0.8, num_sessions=10, seed=12)
        fleet = make_fleet(
            "loongserve", replicas=2, router="affinity",
            requests=trace, prefix_cache=True,
        )
        result = fleet.run(clone_requests(trace))
        report = fleet_load_report(result.per_replica)
        assert report.has_prefix_caches
        assert report.saved_prefill_tokens == result.cache_stats["hit_tokens"]
        rendered = report.render()
        assert "hit-rate" in rendered
        assert "prefill tokens saved" in rendered

    def test_prefix_cache_rejected_for_baselines(self):
        with pytest.raises(ValueError, match="prefix_cache"):
            make_system("vllm", prefix_cache=True)
