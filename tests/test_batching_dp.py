"""Tests for the batching DP (§5.3): feasibility, optimality, and the
quadrangle-inequality pruning's plan equivalence."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batching_dp import plan_batches
from repro.costmodel.analytical import AnalyticalModel, StrategyCoefficients
from repro.parallel.strategy import ParallelismStrategy
from tests.conftest import make_request


def make_predictor(max_sp: int = 4) -> AnalyticalModel:
    """A synthetic model where more instances genuinely help: per-strategy
    coefficients shrink with SP but carry a growing constant."""
    model = AnalyticalModel()
    for sp in range(1, max_sp + 1):
        model.set_coefficients(
            ParallelismStrategy(tensor_parallel=2, sequence_parallel=sp),
            StrategyCoefficients(
                alpha=0.004 + 0.001 * sp, beta=2e-6 / sp, gamma=5e-12 / sp
            ),
        )
    return model


def brute_force_objective(requests, instances, free_slots, predictor) -> float:
    """Exhaustive search over contiguous splits of both sequences."""
    reqs = sorted(requests, key=lambda r: -r.current_len)
    insts = sorted(instances, key=lambda i: free_slots.get(i, 0))
    n, m = len(reqs), len(insts)

    def splits(total, parts):
        for cuts in itertools.combinations(range(1, total), parts - 1):
            yield [0, *cuts, total]

    best = math.inf
    for num_batches in range(1, min(n, m) + 1):
        for req_cut in splits(n, num_batches):
            for ins_cut in splits(m, num_batches):
                cost = 0.0
                ok = True
                for b in range(num_batches):
                    batch_reqs = reqs[req_cut[b]:req_cut[b + 1]]
                    batch_inst = insts[ins_cut[b]:ins_cut[b + 1]]
                    need = sum(r.current_len + 1 for r in batch_reqs)
                    slots = sum(free_slots.get(i, 0) for i in batch_inst)
                    if need > slots:
                        ok = False
                        break
                    strategy = ParallelismStrategy(2, len(batch_inst))
                    if not predictor.has_strategy(strategy):
                        ok = False
                        break
                    t = predictor.predict(strategy, [r.current_len for r in batch_reqs])
                    cost += len(batch_reqs) * t
                if ok:
                    best = min(best, cost)
    return best


class TestPlanBatchesBasics:
    def test_empty_requests(self):
        plan = plan_batches([], [0, 1], {0: 10, 1: 10}, make_predictor(), 2)
        assert plan.is_empty
        assert plan.objective == 0.0

    def test_no_instances_infeasible(self):
        plan = plan_batches([make_request()], [], {}, make_predictor(), 2)
        assert plan.objective == math.inf

    def test_single_request_gets_full_dop_when_beneficial(self):
        predictor = make_predictor()
        request = make_request(input_len=100_000)
        plan = plan_batches([request], [0, 1, 2, 3], {i: 300_000 for i in range(4)},
                            predictor, 2)
        assert len(plan.batches) == 1
        assert plan.batches[0].dop == 4

    def test_tiny_request_avoids_high_dop_overhead(self):
        predictor = make_predictor()
        request = make_request(input_len=10)
        plan = plan_batches([request], [0, 1, 2, 3], {i: 1_000 for i in range(4)},
                            predictor, 2)
        assert plan.batches[0].dop == 1  # alpha grows with SP

    def test_memory_constraint_respected(self):
        predictor = make_predictor()
        requests = [make_request(input_len=90) for _ in range(4)]
        plan = plan_batches(requests, [0, 1], {0: 200, 1: 200}, predictor, 2)
        for batch in plan.batches:
            need = sum(r.current_len + 1 for r in batch.requests)
            slots = sum(200 for _ in batch.instance_ids)
            assert need <= slots

    def test_infeasible_when_memory_short(self):
        predictor = make_predictor()
        requests = [make_request(input_len=1_000)]
        plan = plan_batches(requests, [0], {0: 100}, predictor, 2)
        assert plan.is_empty and plan.objective == math.inf

    def test_all_requests_placed_exactly_once(self):
        predictor = make_predictor()
        requests = [make_request(input_len=n) for n in (5_000, 200, 90_000, 40)]
        plan = plan_batches(requests, [0, 1, 2, 3], {i: 200_000 for i in range(4)},
                            predictor, 2)
        placed = [r.request_id for b in plan.batches for r in b.requests]
        assert sorted(placed) == sorted(r.request_id for r in requests)

    def test_instances_disjoint_across_batches(self):
        predictor = make_predictor()
        requests = [make_request(input_len=n) for n in (50_000, 60, 70, 80)]
        plan = plan_batches(requests, [0, 1, 2, 3], {i: 200_000 for i in range(4)},
                            predictor, 2)
        used = [i for b in plan.batches for i in b.instance_ids]
        assert len(used) == len(set(used))


class TestOptimality:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        predictor = make_predictor()
        requests = [
            make_request(input_len=int(rng.integers(50, 50_000)))
            for _ in range(int(rng.integers(1, 6)))
        ]
        instances = list(range(int(rng.integers(1, 5))))
        free = {i: int(rng.integers(30_000, 120_000)) for i in instances}
        plan = plan_batches(requests, instances, free, predictor, 2, optimized=False)
        expected = brute_force_objective(requests, instances, free, predictor)
        if math.isinf(expected):
            assert plan.objective == math.inf or plan.is_empty
        else:
            assert plan.objective == pytest.approx(expected, rel=1e-9)

    @given(
        lens=st.lists(st.integers(min_value=10, max_value=80_000), min_size=1, max_size=7),
        slots=st.lists(st.integers(min_value=10_000, max_value=150_000), min_size=1, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_pruned_close_to_naive_objective(self, lens, slots):
        """The quadrangle-inequality pruning can miss the optimum only
        when the fitted α(SP) structure violates the QI premise, and then
        by a tightly bounded margin (never below the true optimum)."""
        predictor = make_predictor()
        requests = [make_request(input_len=n) for n in lens]
        instances = list(range(len(slots)))
        free = {i: s for i, s in enumerate(slots)}
        naive = plan_batches(requests, instances, free, predictor, 2, optimized=False)
        pruned = plan_batches(requests, instances, free, predictor, 2, optimized=True)
        if math.isinf(naive.objective):
            assert math.isinf(pruned.objective)
        else:
            assert pruned.objective >= naive.objective * (1 - 1e-9)
            assert pruned.objective <= naive.objective * 1.05

    def test_similar_lengths_batch_contiguously(self):
        """The paper's insight — similar-length requests batch together —
        is enforced structurally: every batch is a contiguous interval of
        the length-sorted request order."""
        predictor = make_predictor()
        requests = [make_request(input_len=n) for n in (40_000, 39_000, 100, 90, 85)]
        plan = plan_batches(requests, [0, 1, 2, 3], {i: 200_000 for i in range(4)},
                            predictor, 2)
        order = sorted(requests, key=lambda r: -r.current_len)
        positions = {r.request_id: idx for idx, r in enumerate(order)}
        for batch in plan.batches:
            indices = sorted(positions[r.request_id] for r in batch.requests)
            assert indices == list(range(indices[0], indices[0] + len(indices)))
