"""Chaos invariants with QoS and failure injection armed *together*.

The PR 4 chaos harness proves exactly-once and token conservation under
random crash schedules; QoS adds two new ways to lose or double-count a
request — admission rejection (a deliberate terminal abort) and
deadline preemption (eviction + recomputation).  These properties pin
the combined behaviour:

* every trace request ends on exactly one replica's ledger, either
  finished (with its full declared output) or rejected-by-admission;
* fleet-summed QoS ledgers reconcile: submitted = admitted + rejected,
  with each request counted exactly once across crashes and failovers
  (a dead replica's ledger survives — that work happened);
* pool occupancy stays consistent (resident slots == prefix-cache
  tokens) after crashes, preemptions, and rejections;
* runs replay deterministically.

``CI=1`` (tests/conftest.py) derandomizes the schedules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.systems import make_fleet
from repro.fleet import FaultPlan, ReplicaFault
from repro.sessions import make_session_trace
from repro.workloads.trace_gen import clone_requests

REPLICAS = 3
QOS_MIX = {"interactive": 0.4, "standard": 0.4, "batch": 0.2}
TRACE = make_session_trace(rate=4.0, num_sessions=6, seed=31, qos_mix=QOS_MIX)

fault_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=REPLICAS - 1),
        st.floats(min_value=0.5, max_value=6.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=5,
)


def qos_fleet(plan: FaultPlan | None):
    return make_fleet(
        "loongserve", replicas=REPLICAS, requests=TRACE, num_gpus=2,
        prefix_cache=True, router="slo", qos=True, admission=True,
        steal=True, migrate_kv=True, faults=plan,
    )


def signature(result):
    return sorted(
        (r.request_id, round(r.finish_time, 9) if r.finish_time else None,
         r.generated, r.preemptions)
        for r in result.requests
    )


def assert_qos_fault_invariants(trace, fleet, result) -> None:
    served = [
        r.request_id
        for replica in result.per_replica
        for r in replica.requests + replica.aborted
    ]
    # Exactly-once: nothing lost, nothing duplicated — rejections are
    # terminal outcomes, not disappearances.
    assert sorted(served) == sorted(r.request_id for r in trace)
    assert len(set(served)) == len(served)
    # Token conservation: finished requests produced exactly their
    # declared output; everything else was rejected by admission.
    rejected = {r.request_id for r in result.aborted}
    for request in result.finished_requests:
        assert request.generated == request.output_len
        assert request.request_id not in rejected
    assert len(result.finished_requests) + len(rejected) == len(trace)
    # Ledger reconciliation, fleet-wide and crash-proof.
    stats = result.qos_stats
    assert stats is not None
    submitted = sum(int(c.get("submitted", 0)) for c in stats.values())
    admitted = sum(int(c.get("admitted", 0)) for c in stats.values())
    ledger_rejected = sum(int(c.get("rejected", 0)) for c in stats.values())
    assert submitted == len(trace)
    assert submitted == admitted + ledger_rejected
    assert ledger_rejected == len(rejected)
    # Pool occupancy: preemption, rejection, crash, and migration leak
    # no KV slots.
    for handle in fleet.replicas:
        server = handle.server
        cache = getattr(server, "prefix_cache", None)
        expected = cache.resident_tokens if cache is not None else 0
        assert server.pool.total_used == expected
    # Flight-recorder coherence.
    elastic = result.elastic
    if elastic is not None and fleet.policy.injector is not None:
        assert elastic.crashes == len(fleet.policy.injector.injected)
        assert all(
            0 <= online <= len(fleet.replicas)
            for _, online in elastic.capacity_timeline
        )


@given(specs=fault_specs)
@settings(max_examples=8, deadline=None)
def test_invariants_hold_under_random_crashes_with_qos(specs):
    plan = FaultPlan(
        [ReplicaFault(time=t, replica_id=r, downtime_s=d) for t, r, d in specs]
    )
    fleet = qos_fleet(plan)
    result = fleet.run(clone_requests(TRACE))
    assert_qos_fault_invariants(TRACE, fleet, result)


@given(specs=fault_specs)
@settings(max_examples=4, deadline=None)
def test_qos_faulted_runs_replay_deterministically(specs):
    plan = FaultPlan(
        [ReplicaFault(time=t, replica_id=r, downtime_s=d) for t, r, d in specs]
    )
    first = qos_fleet(plan).run(clone_requests(TRACE))
    second = qos_fleet(plan).run(clone_requests(TRACE))
    assert signature(first) == signature(second)
    assert first.qos_stats == second.qos_stats


def test_fault_free_qos_run_has_full_ledger():
    fleet = qos_fleet(None)
    result = fleet.run(clone_requests(TRACE))
    assert_qos_fault_invariants(TRACE, fleet, result)
