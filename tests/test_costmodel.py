"""Tests for the roofline cost model and communication primitives.

Property-style tests assert the monotonicity and crossover behaviours the
paper's figures depend on, plus the published anchors.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.topology import Topology
from repro.costmodel.comm import CollectiveModel
from repro.costmodel.latency import RooflineCostModel
from repro.model.spec import LWM_7B_1M


@pytest.fixture(scope="module")
def cm() -> RooflineCostModel:
    return RooflineCostModel(cluster=Cluster.homogeneous(num_gpus=8), model=LWM_7B_1M)


@pytest.fixture(scope="module")
def coll() -> CollectiveModel:
    return CollectiveModel(cluster=Cluster.homogeneous(num_gpus=16, gpus_per_node=8))


class TestCollectives:
    def test_allreduce_zero_for_world_one(self, coll):
        assert coll.allreduce_time(1e9, 1, Topology(8, 8).nvlink) == 0.0

    def test_allreduce_grows_with_bytes(self, coll):
        link = Topology(8, 8).nvlink
        assert coll.allreduce_time(2e9, 4, link) > coll.allreduce_time(1e9, 4, link)

    def test_ring_pass_single_instance_free(self, coll):
        assert coll.ring_pass_time(1e9, [0], tensor_parallel=2) == 0.0

    def test_ring_pass_cross_node_slower(self, coll):
        intra = coll.ring_pass_time(1e9, [0, 1], tensor_parallel=2)
        inter = coll.ring_pass_time(1e9, [0, 4], tensor_parallel=2)
        assert inter > intra

    def test_migration_time_linear_in_bytes(self, coll):
        t1 = coll.migration_time(1e9, 0, 1, tensor_parallel=2)
        t2 = coll.migration_time(2e9, 0, 1, tensor_parallel=2)
        assert t2 > t1
        assert t2 < 2.1 * t1

    def test_zero_byte_migration_free(self, coll):
        assert coll.migration_time(0, 0, 1, tensor_parallel=2) == 0.0


class TestPrefillRoofline:
    def test_paper_100k_vs_1k_anchor(self, cm):
        """Figure 2: 100K-token prefill is ~two orders slower than 1K."""
        ratio = cm.prefill_time([100_000], 4, 2) / cm.prefill_time([1_000], 4, 2)
        assert 50 < ratio < 400

    def test_more_instances_faster_for_long_prompts(self, cm):
        t1 = cm.prefill_time([100_000], 1, 2)
        t4 = cm.prefill_time([100_000], 4, 2)
        assert t4 < t1

    def test_short_prompts_do_not_scale(self, cm):
        """Figure 2 top-left: tiny batches gain little from more GPUs."""
        t1 = cm.prefill_time([10] * 16, instances=1, tensor_parallel=2)
        t4 = cm.prefill_time([10] * 16, instances=1, tensor_parallel=8)
        assert t4 > 0.5 * t1  # nowhere near 4x

    def test_sp_competitive_with_tp(self, cm):
        """Figure 3: SP4TP2 matches or beats SP1TP8 on the paper's grid."""
        for bs, length in [(512, 1_000), (16, 50_000), (1, 500_000)]:
            tp8 = cm.prefill_time([length] * bs, 1, 8)
            sp4 = cm.prefill_time([length] * bs, 4, 2)
            assert sp4 <= tp8 * 1.05

    def test_empty_batch_zero(self, cm):
        assert cm.prefill_time([], 4, 2) == 0.0

    @given(length=st.integers(min_value=16, max_value=400_000))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_length(self, cm, length):
        assert cm.prefill_time([length + 1024], 4, 2) > cm.prefill_time([length], 4, 2)

    @given(bs=st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_batch_size(self, cm, bs):
        t_small = cm.prefill_time([512] * bs, 4, 2)
        t_large = cm.prefill_time([512] * (bs + 1), 4, 2)
        assert t_large > t_small


class TestDecodeRoofline:
    def test_decode_floor_is_weight_read(self, cm):
        floor = cm.decode_step_lower_bound(tensor_parallel=2)
        assert cm.decode_time([100], 1, 2) >= floor

    def test_long_context_decode_scales_with_instances(self, cm):
        """Figure 2 bottom: decode gains from DoP only at long context."""
        t1 = cm.decode_time([200_000], 1, 2)
        t4 = cm.decode_time([200_000], 4, 2)
        assert t4 < t1
        short1 = cm.decode_time([100], 1, 2)
        short4 = cm.decode_time([100], 4, 2)
        assert short4 > 0.9 * short1  # no real gain, some overhead

    def test_multi_master_helps_large_batch(self, cm):
        """Figure 14b: masters split linear work at large batch sizes."""
        t1 = cm.decode_time([10] * 1024, 4, 2, num_masters=1)
        t4 = cm.decode_time([10] * 1024, 4, 2, num_masters=4)
        assert t1 / t4 > 1.5

    def test_multi_master_harmless_small_batch(self, cm):
        """Figure 14b: scale-up overhead stays small for tiny batches."""
        t1 = cm.decode_time([200_000], 4, 2, num_masters=1)
        t4 = cm.decode_time([200_000], 4, 2, num_masters=4)
        assert abs(t4 - t1) / t1 < 0.10

    def test_empty_batch_zero(self, cm):
        assert cm.decode_time([], 4, 2) == 0.0

    @given(bs=st.integers(min_value=1, max_value=256))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_batch(self, cm, bs):
        assert cm.decode_time([500] * (bs + 1), 2, 2) > cm.decode_time([500] * bs, 2, 2)


class TestFusedIteration:
    def test_pure_prefill_equals_prefill(self, cm):
        fused = cm.fused_iteration_time([(5_000, 0)], [], [0, 1], 2)
        plain = cm.prefill_time([5_000], [0, 1], 2)
        assert fused == pytest.approx(plain)

    def test_chunked_prefill_total_attention_preserved(self, cm):
        """Chunks re-read weights each iteration -> fused total exceeds
        the single whole-prompt iteration (SplitFuse's inefficiency)."""
        whole = cm.prefill_time([32_768], 1, 8)
        chunks = sum(
            cm.fused_iteration_time([(2_048, i * 2_048)], [], 1, 8)
            for i in range(16)
        )
        assert chunks > whole

    def test_fused_decode_slower_than_pure_decode(self, cm):
        pure = cm.decode_time([1_000] * 8, 1, 8)
        fused = cm.fused_iteration_time([(2_048, 0)], [1_000] * 8, 1, 8)
        assert fused > pure

    def test_migration_time_positive(self, cm):
        assert cm.migration_time(10_000, 0, 1, 2) > 0.0
