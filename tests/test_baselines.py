"""Tests for the baseline serving systems."""

import pytest

from repro.baselines.splitfuse import ideal_chunk_size
from repro.experiments.systems import (
    build_distserve,
    build_replicated_tp2,
    build_splitfuse,
    build_static_sp,
    build_vllm,
)
from repro.types import Phase
from repro.workloads.datasets import LEVAL, SHAREGPT
from repro.workloads.trace_gen import clone_requests, make_trace
from tests.conftest import make_request


class TestVLLM:
    def test_serves_trace(self):
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=30, seed=1)
        result = build_vllm().run(trace)
        assert len(result.finished_requests) == 30

    def test_runs_whole_prompt_prefills(self):
        server = build_vllm()
        result = server.run([make_request(input_len=10_000, output_len=3)])
        prefills = [s for s in result.iteration_stats if s.phase == Phase.PREFILL]
        assert len(prefills) == 1
        assert prefills[0].total_tokens == 10_000

    def test_prefill_blocks_decode(self):
        """A long prompt arriving mid-decode stalls output tokens — the
        interference LoongServe eliminates (§7.2)."""
        server = build_vllm()
        short = make_request(input_len=100, output_len=400, arrival=0.0)
        long = make_request(input_len=300_000, output_len=2, arrival=1.0)
        server.run([short, long])
        # the short request's decode must straddle the long prefill
        assert short.finish_time > 10.0

    def test_rejects_wrong_config(self):
        from repro.config import default_config
        from repro.baselines.vllm import VLLMServer

        with pytest.raises(ValueError):
            VLLMServer(default_config(num_gpus=8, tensor_parallel=2))

    def test_pool_empty_after_run(self):
        server = build_vllm()
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=20, seed=2)
        server.run(trace)
        assert server.pool.used == 0


class TestSplitFuse:
    def test_serves_trace(self):
        trace = make_trace(LEVAL, rate=1.0, num_requests=15, seed=3)
        result = build_splitfuse(trace).run(clone_requests(trace))
        assert len(result.finished_requests) == 15

    def test_chunking_splits_prefill(self):
        server = build_splitfuse(chunk_size=1_000)
        result = server.run([make_request(input_len=10_000, output_len=3)])
        prefills = [s for s in result.iteration_stats if s.phase == Phase.PREFILL]
        assert len(prefills) == 10

    def test_decode_protected_from_long_prompt(self):
        """Chunked prefill interleaves decode steps between chunks."""
        fused = build_splitfuse(chunk_size=2_048)
        short_f = make_request(input_len=100, output_len=400, arrival=0.0)
        long_f = make_request(input_len=300_000, output_len=2, arrival=1.0)
        fused.run([short_f, long_f])

        plain = build_vllm()
        short_v = make_request(input_len=100, output_len=400, arrival=0.0)
        long_v = make_request(input_len=300_000, output_len=2, arrival=1.0)
        plain.run([short_v, long_v])
        assert short_f.finish_time < short_v.finish_time

    def test_ideal_chunk_size_pd_ratio(self):
        requests = [make_request(input_len=10_000, output_len=10) for _ in range(5)]
        assert ideal_chunk_size(requests) == 1_000

    def test_ideal_chunk_size_clamped(self):
        tiny = [make_request(input_len=10, output_len=1_000)]
        assert ideal_chunk_size(tiny) == 256

    def test_deepspeed_mii_crashes_past_32k(self):
        server = build_splitfuse(chunk_size=2_048, deepspeed_mii=True)
        ok = make_request(input_len=10_000, output_len=3)
        too_long = make_request(input_len=60_000, output_len=3)
        result = server.run([ok, too_long])
        assert ok.finished
        assert too_long in result.aborted


class TestDistServe:
    def test_serves_trace(self):
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=30, seed=4)
        result = build_distserve().run(trace)
        assert len(result.finished_requests) == 30

    def test_counts_migrations(self):
        server = build_distserve()
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=10, seed=5)
        server.run(trace)
        assert server.migrations == 10
        assert server.migration_seconds > 0

    def test_oom_on_requests_beyond_half_cluster(self):
        """§7.2: the longest request is bounded by one group's capacity."""
        server = build_distserve()
        capacity = server.decode_engine.kv_slots
        request = make_request(input_len=capacity + 100, output_len=3)
        result = server.run([request])
        assert request in result.aborted

    def test_migration_adds_first_token_delay(self):
        dist = build_distserve()
        r_dist = make_request(input_len=200_000, output_len=2)
        dist.run([r_dist])
        assert r_dist.finished
        # decode starts only after the reactive migration completes
        assert r_dist.finish_time - r_dist.prefill_end > dist.migration_seconds / 2

    def test_rejects_wrong_config(self):
        from repro.baselines.distserve import DistServeServer
        from repro.config import default_config

        with pytest.raises(ValueError):
            DistServeServer(default_config(num_gpus=8, tensor_parallel=2))


class TestStaticSP:
    def test_serves_trace(self):
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=30, seed=6)
        result = build_static_sp().run(trace)
        assert len(result.finished_requests) == 30

    def test_every_iteration_uses_full_group(self):
        server = build_static_sp()
        trace = make_trace(SHAREGPT, rate=5.0, num_requests=10, seed=7)
        result = server.run(trace)
        assert all(s.dop == 4 for s in result.iteration_stats)


class TestReplicated:
    def test_serves_trace(self):
        trace = make_trace(SHAREGPT, rate=10.0, num_requests=30, seed=8)
        result = build_replicated_tp2().run(trace)
        assert len(result.finished_requests) == 30

    def test_fragmentation_aborts_long_request(self):
        """Figure 4's pathology: plenty of total memory, but no single
        replica can hold the request."""
        server = build_replicated_tp2()
        per_replica = server.engines[0].kv_slots
        request = make_request(input_len=per_replica + 1_000, output_len=3)
        result = server.run([request])
        assert request in result.aborted

    def test_load_balances_across_replicas(self):
        server = build_replicated_tp2()
        trace = make_trace(SHAREGPT, rate=50.0, num_requests=80, seed=9)
        server.run(trace)
        counts = [len(engine.finished) for engine in server.engines]
        assert sum(counts) == 80
        assert max(counts) - min(counts) < 60  # not all on one replica

    def test_name_reflects_replication(self):
        assert "x 4" in build_replicated_tp2().name
