"""Property-based invariants of the serving loop under random traces.

Hypothesis drives small random workloads through LoongServe and asserts
the conservation laws any correct serving system must satisfy.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import default_config
from repro.core.server import LoongServeServer
from repro.types import Request, next_request_id

CONFIG = default_config()

request_params = st.tuples(
    st.integers(min_value=1, max_value=20_000),   # input_len
    st.integers(min_value=1, max_value=40),       # output_len
    st.floats(min_value=0.0, max_value=5.0),      # arrival
)


def build_trace(params: list[tuple[int, int, float]]) -> list[Request]:
    return [
        Request(
            request_id=next_request_id(),
            input_len=input_len,
            output_len=output_len,
            arrival_time=arrival,
        )
        for input_len, output_len, arrival in sorted(params, key=lambda p: p[2])
    ]


@given(params=st.lists(request_params, min_size=1, max_size=12))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_serving_conservation_laws(params):
    """For any admissible trace: every request finishes with exactly its
    output_len tokens, timestamps are ordered, the KV pool drains, and
    instances end idle."""
    server = LoongServeServer(CONFIG)
    trace = build_trace(params)
    result = server.run(trace)

    assert len(result.finished_requests) == len(trace)
    for request in result.finished_requests:
        assert request.generated == request.output_len
        assert request.arrival_time <= request.prefill_start
        assert request.prefill_start <= request.prefill_end
        assert request.prefill_end <= request.finish_time
    assert server.pool.total_used == 0
    assert all(inst.is_idle for inst in server.instances.values())
    assert result.makespan >= max(r.finish_time for r in result.finished_requests) - 1e-9


@given(
    params=st.lists(request_params, min_size=2, max_size=10),
    seed=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_scaling_events_well_formed(params, seed):
    """Every recorded scaling event changes the group in the advertised
    direction and never exceeds the cluster."""
    server = LoongServeServer(CONFIG)
    rng = np.random.default_rng(seed)
    trace = build_trace(params)
    for request in trace:
        request.arrival_time += float(rng.uniform(0, 1))
    trace.sort(key=lambda r: r.arrival_time)
    result = server.run(trace)

    for event in result.scaling_events:
        before, after = set(event.group_before), set(event.group_after)
        assert after <= set(range(CONFIG.num_instances))
        if event.kind == "scale_up":
            assert before < after
        else:
            assert after < before


@given(params=st.lists(request_params, min_size=1, max_size=8))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_iteration_stats_cover_all_tokens(params):
    """Prefill iterations process every admitted request's prompt once
    (no request is silently skipped or double-prefilled)."""
    server = LoongServeServer(CONFIG)
    trace = build_trace(params)
    result = server.run(trace)
    from repro.types import Phase

    prefill_tokens = sum(
        s.total_tokens for s in result.iteration_stats if s.phase == Phase.PREFILL
    )
    expected = sum(r.input_len for r in trace)
    # Preemption-free traces prefill each prompt exactly once.
    total_preemptions = sum(r.preemptions for r in trace)
    if total_preemptions == 0:
        assert prefill_tokens == expected
    else:
        assert prefill_tokens >= expected
