"""Disaggregated prefill/decode dispatch and warm standby pools.

Contracts pinned here:

* **Exactly-once serving** — every arrival rides the two-stage path
  (prefill clone → priced handoff → decode submission) and lands in the
  fleet result exactly once; shadow clones never appear.
* **Pool separation** — prefill replicas route nothing in the result,
  and the decode side recomputes exactly one prompt token per request
  (the imported prefix covers ``input_len - 1``).
* **Degraded, never lost** — a clone abort (prompt too large for the
  prefill replica) falls back to a direct decode-pool submission.
* **Config gates** — the invalid combinations raise instead of serving
  silently-wrong results.
* **Composition** — work stealing and fault injection run alongside the
  two-stage path: steals never cross the pool split or move a clone,
  and crashes on either side degrade to fallbacks instead of losing
  requests.
* **Warm standby** — a standby replica promoted by the autoscaler pays
  zero warm-up (weights stayed resident).
"""

import pytest

from repro.experiments.systems import make_fleet
from repro.fleet import CLONE_ID_OFFSET, DisaggDispatcher, FaultPlan, ReplicaFault
from repro.obs import Observability
from repro.workloads.datasets import LEVAL, SHAREGPT
from repro.workloads.trace_gen import clone_requests, make_trace

TRACE = make_trace(SHAREGPT, rate=10.0, num_requests=24, seed=13)


def disagg_fleet(replicas=3, prefill=1, **kwargs):
    return make_fleet(
        "loongserve", replicas=replicas, router="round-robin",
        requests=TRACE, num_gpus=4, prefix_cache=True, disagg=prefill,
        **kwargs,
    )


class TestDisaggDispatch:
    def test_every_request_served_exactly_once(self):
        fleet = disagg_fleet()
        result = fleet.run(clone_requests(TRACE))
        served = [
            r.request_id
            for replica in result.per_replica
            for r in replica.requests + replica.aborted
        ]
        assert sorted(served) == sorted(r.request_id for r in TRACE)
        assert len(set(served)) == len(served)
        assert not result.aborted
        assert len(result.finished_requests) == len(TRACE)
        # No shadow clone leaks into any ledger.
        assert all(rid < CLONE_ID_OFFSET for rid in served)

    def test_prefill_pool_routes_nothing_in_the_result(self):
        fleet = disagg_fleet()
        result = fleet.run(clone_requests(TRACE))
        prefill_side = result.per_replica[0]
        assert not prefill_side.requests
        assert not prefill_side.aborted
        # The prefill work happened there all the same: the replica's
        # cache adopted every clone's KV and exported it onward.
        assert prefill_side.cache_stats["exported_tokens"] > 0

    def test_decode_side_recomputes_one_prompt_token(self):
        fleet = disagg_fleet()
        result = fleet.run(clone_requests(TRACE))
        decode_stats = [r.cache_stats for r in result.per_replica[1:]]
        hits = sum(s["hits"] for s in decode_stats)
        hit_tokens = sum(s["hit_tokens"] for s in decode_stats)
        assert hits == len(TRACE)
        assert hit_tokens == sum(r.input_len - 1 for r in TRACE)

    def test_handoffs_are_counted_and_priced(self):
        fleet = disagg_fleet()
        result = fleet.run(clone_requests(TRACE))
        elastic = result.elastic
        assert elastic.disagg_handoffs == len(TRACE)
        # The clone's adopted extent covers the whole prompt (its one
        # generated token's KV is the prompt's last slot), so the fabric
        # carries input_len tokens per request even though the decode
        # side can only use input_len - 1 of them.
        assert elastic.disagg_handoff_tokens == sum(r.input_len for r in TRACE)
        assert elastic.disagg_handoff_seconds > 0.0
        assert fleet.disagg.inflight == 0

    def test_rerun_is_deterministic(self):
        fleet = disagg_fleet()
        first = fleet.run(clone_requests(TRACE))
        second = fleet.run(clone_requests(TRACE))
        times_a = sorted(
            (r.request_id, round(r.finish_time, 12))
            for r in first.finished_requests
        )
        times_b = sorted(
            (r.request_id, round(r.finish_time, 12))
            for r in second.finished_requests
        )
        assert times_a == times_b

    def test_oversized_prompt_falls_back_to_direct_decode(self):
        fleet = disagg_fleet()
        capacity = sum(
            pool.capacity for _, pool in fleet.replicas[0].kv_sources()
        )
        giant = make_trace(SHAREGPT, rate=10.0, num_requests=1, seed=99)[0]
        giant.input_len = capacity + 10
        giant.token_ids = None
        obs = Observability()
        fleet.observe(obs)
        trace = [giant] + clone_requests(TRACE)
        result = fleet.run(trace)
        # The clone aborted on the prefill side, the original took the
        # fallback path and aborted on a decode replica — exactly once,
        # while every normal request still finished.
        assert [r.request_id for r in result.aborted] == [giant.request_id]
        assert len(result.finished_requests) == len(TRACE)
        fallbacks = [r for r in obs.tracer.records if r.kind == "disagg_fallback"]
        assert [r.payload["request"] for r in fallbacks] == [giant.request_id]
        assert fleet.disagg.inflight == 0


class TestDisaggGates:
    def test_requires_prefix_cache(self):
        with pytest.raises(ValueError, match="prefix_cache"):
            make_fleet("loongserve", replicas=3, disagg=1)

    def test_requires_a_decode_pool(self):
        with pytest.raises(ValueError, match="disagg"):
            make_fleet("loongserve", replicas=2, prefix_cache=True, disagg=2)

    def test_dispatcher_needs_a_prefill_replica(self):
        with pytest.raises(ValueError, match="prefill"):
            DisaggDispatcher(num_prefill=0, pricing=())

    def test_standby_requires_an_autoscaler(self):
        with pytest.raises(ValueError, match="standby"):
            make_fleet("loongserve", replicas=2, standby=1)


class TestDisaggComposition:
    def assert_served_exactly_once(self, result, trace):
        served = [
            r.request_id
            for replica in result.per_replica
            for r in replica.requests + replica.aborted
        ]
        assert sorted(served) == sorted(r.request_id for r in trace)
        assert len(set(served)) == len(served)
        assert len(result.finished_requests) + len(result.aborted) == len(trace)

    def test_composes_with_stealing(self):
        burst = make_trace(LEVAL, rate=40.0, num_requests=32, seed=11)
        fleet = make_fleet(
            "loongserve", replicas=4, router="round-robin",
            requests=burst, num_gpus=4, prefix_cache=True, disagg=1,
            steal=True,
        )
        obs = Observability()
        fleet.observe(obs)
        result = fleet.run(clone_requests(burst))
        self.assert_served_exactly_once(result, burst)
        assert not result.aborted
        # Steals stay inside one pool and never touch a shadow clone.
        num_prefill = fleet.disagg.num_prefill
        for record in obs.tracer.records:
            if record.kind == "steal":
                assert record.payload["request"] < CLONE_ID_OFFSET
                assert (record.payload["src"] < num_prefill) == (
                    record.payload["dst"] < num_prefill
                )
        assert fleet.disagg.inflight == 0

    def test_decode_crash_reroutes_over_surviving_pool(self):
        plan = FaultPlan([ReplicaFault(time=0.5, replica_id=2, downtime_s=2.0)])
        fleet = disagg_fleet(faults=plan)
        obs = Observability()
        fleet.observe(obs)
        result = fleet.run(clone_requests(TRACE))
        self.assert_served_exactly_once(result, TRACE)
        assert not result.aborted
        assert [r.kind for r in obs.tracer.records].count("crash") == 1
        assert fleet.disagg.inflight == 0

    def test_prefill_crash_degrades_to_direct_decode(self):
        # Take down the only prefill replica mid-run: orphaned clones and
        # arrivals during the outage both fall back to direct decode.
        plan = FaultPlan([ReplicaFault(time=0.2, replica_id=0, downtime_s=5.0)])
        fleet = disagg_fleet(faults=plan)
        obs = Observability()
        fleet.observe(obs)
        result = fleet.run(clone_requests(TRACE))
        self.assert_served_exactly_once(result, TRACE)
        assert not result.aborted
        fallbacks = [
            r for r in obs.tracer.records if r.kind == "disagg_fallback"
        ]
        assert fallbacks, "prefill-pool outage produced no fallbacks"
        # Fallback requests are real arrivals, each one served.
        finished = {r.request_id for r in result.finished_requests}
        assert {r.payload["request"] for r in fallbacks} <= finished
        assert fleet.disagg.inflight == 0


class TestWarmStandby:
    def test_standby_promotion_pays_zero_warmup(self):
        # Long prompts build prefill queues two replicas cannot drain,
        # so the autoscaler must reach for the parked standby.
        burst = make_trace(LEVAL, rate=30.0, num_requests=24, seed=7)
        fleet = make_fleet(
            "loongserve", replicas=2, router="round-robin",
            requests=burst, num_gpus=4, autoscale=True, standby=1,
        )
        standby_id = fleet.replicas[-1].replica_id
        assert fleet.replicas[-1].standby
        obs = Observability()
        fleet.observe(obs)
        result = fleet.run(clone_requests(burst))
        assert len(result.finished_requests) == len(burst)
        promotions = [
            r for r in obs.tracer.records
            if r.kind == "warmup"
            and r.replica == standby_id
            and r.payload["action"] == "unpark"
        ]
        assert promotions, "the burst never promoted the standby replica"
        for record in promotions:
            assert record.payload["standby"] is True
            assert record.payload["warmup_s"] == 0.0

    def test_standby_starts_parked(self):
        trace = make_trace(SHAREGPT, rate=4.0, num_requests=4, seed=3)
        fleet = make_fleet(
            "loongserve", replicas=2, router="round-robin",
            requests=trace, num_gpus=4, autoscale=True, standby=1,
        )
        result = fleet.run(clone_requests(trace))
        # A gentle trace never needs the third replica: the capacity
        # timeline starts (and stays) at the two online replicas.
        assert result.elastic.capacity_timeline[0] == (0.0, 2)
        assert len(result.finished_requests) == len(trace)
