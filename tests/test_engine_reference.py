"""Tests for the serial reference transformer (the correctness oracle)."""

import numpy as np
import pytest

from repro.engine.reference import (
    ReferenceTransformer,
    causal_attention,
    next_token_embedding,
)
from repro.engine.softmax import OnlineSoftmax
from repro.engine.weights import TransformerWeights, rmsnorm, rope_rotate


@pytest.fixture(scope="module")
def weights() -> TransformerWeights:
    return TransformerWeights.random(hidden_size=32, num_heads=4, num_layers=2, seed=0)


class TestPrimitives:
    def test_rmsnorm_unit_scale(self):
        x = np.array([[3.0, 4.0]])
        out = rmsnorm(x, np.ones(2))
        assert np.abs(np.mean(out**2) - 1.0) < 1e-3

    def test_rope_preserves_norm(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((5, 2, 8))
        rotated = rope_rotate(x, np.arange(5))
        np.testing.assert_allclose(
            np.linalg.norm(rotated, axis=-1), np.linalg.norm(x, axis=-1), atol=1e-10
        )

    def test_rope_position_zero_is_identity(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 2, 8))
        np.testing.assert_allclose(rope_rotate(x, np.array([0])), x, atol=1e-12)

    def test_rope_rejects_odd_head_dim(self):
        with pytest.raises(ValueError):
            rope_rotate(np.zeros((1, 1, 7)), np.array([0]))

    def test_causal_attention_masks_future(self):
        """Changing a future token must not change an earlier output."""
        rng = np.random.default_rng(2)
        q = rng.standard_normal((3, 2, 8))
        k = rng.standard_normal((3, 2, 8))
        v = rng.standard_normal((3, 2, 8))
        positions = np.arange(3)
        base = causal_attention(q, k, v, positions, positions)
        k2, v2 = k.copy(), v.copy()
        k2[2] += 1.0
        v2[2] -= 1.0
        perturbed = causal_attention(q, k2, v2, positions, positions)
        np.testing.assert_allclose(base[:2], perturbed[:2], atol=1e-12)
        assert not np.allclose(base[2], perturbed[2])


class TestReferenceTransformer:
    def test_prefill_shapes(self, weights):
        ref = ReferenceTransformer(weights)
        x = np.random.default_rng(0).standard_normal((9, 32))
        hidden, cache = ref.prefill(x)
        assert hidden.shape == (9, 32)
        assert cache.num_tokens == 9
        assert len(cache.layers) == weights.num_layers

    def test_prefill_rejects_wrong_width(self, weights):
        ref = ReferenceTransformer(weights)
        with pytest.raises(ValueError):
            ref.prefill(np.zeros((4, 33)))

    def test_decode_step_appends_cache(self, weights):
        ref = ReferenceTransformer(weights)
        rng = np.random.default_rng(1)
        _, cache = ref.prefill(rng.standard_normal((5, 32)))
        ref.decode_step(rng.standard_normal(32), cache)
        assert cache.num_tokens == 6

    def test_decode_equals_prefill_incrementally(self, weights):
        """Prefilling n+1 tokens == prefilling n then decoding the last."""
        ref = ReferenceTransformer(weights)
        rng = np.random.default_rng(2)
        x = rng.standard_normal((8, 32))
        full_hidden, _ = ref.prefill(x)
        _, cache = ref.prefill(x[:7])
        last = ref.decode_step(x[7], cache)
        np.testing.assert_allclose(last, full_hidden[7], atol=1e-10)

    def test_generate_deterministic(self, weights):
        ref = ReferenceTransformer(weights)
        x = np.random.default_rng(3).standard_normal((6, 32))
        a = ref.generate(x, num_steps=4)
        b = ref.generate(x, num_steps=4)
        np.testing.assert_array_equal(a, b)

    def test_next_token_embedding_bounded(self):
        out = next_token_embedding(np.array([100.0, -100.0, 0.0]))
        assert np.all(np.abs(out) <= 0.5)


class TestOnlineSoftmax:
    def test_single_block_matches_direct(self):
        rng = np.random.default_rng(4)
        q = rng.standard_normal((3, 2, 8))
        k = rng.standard_normal((5, 2, 8))
        v = rng.standard_normal((5, 2, 8))
        q_pos = np.arange(10, 13)
        k_pos = np.arange(5)
        acc = OnlineSoftmax(3, 2, 8)
        acc.update(q, k, v, q_pos, k_pos)
        np.testing.assert_allclose(
            acc.finalize(), causal_attention(q, k, v, q_pos, k_pos), atol=1e-12
        )

    def test_block_order_invariance(self):
        """Online accumulation over any block split equals full softmax."""
        rng = np.random.default_rng(5)
        q = rng.standard_normal((2, 2, 8))
        k = rng.standard_normal((9, 2, 8))
        v = rng.standard_normal((9, 2, 8))
        q_pos = np.array([8, 8])
        k_pos = np.arange(9)
        expected = causal_attention(q, k, v, q_pos, k_pos)
        for splits in ([3, 6], [1, 2, 5], [4]):
            acc = OnlineSoftmax(2, 2, 8)
            blocks = np.split(np.arange(9), splits)
            rng.shuffle(blocks)
            for block in blocks:
                acc.update(q, k[block], v[block], q_pos, k_pos[block])
            np.testing.assert_allclose(acc.finalize(), expected, atol=1e-10)

    def test_merge_partial_equals_sequential(self):
        rng = np.random.default_rng(6)
        q = rng.standard_normal((1, 2, 8))
        k = rng.standard_normal((6, 2, 8))
        v = rng.standard_normal((6, 2, 8))
        q_pos = np.array([6])
        k_pos = np.arange(6)

        sequential = OnlineSoftmax(1, 2, 8)
        sequential.update(q, k, v, q_pos, k_pos)

        left = OnlineSoftmax(1, 2, 8)
        left.update(q, k[:3], v[:3], q_pos, k_pos[:3])
        right = OnlineSoftmax(1, 2, 8)
        right.update(q, k[3:], v[3:], q_pos, k_pos[3:])
        left.merge_partial(*right.partial())
        np.testing.assert_allclose(left.finalize(), sequential.finalize(), atol=1e-12)

    def test_fully_masked_query_raises_on_finalize(self):
        acc = OnlineSoftmax(1, 2, 8)
        rng = np.random.default_rng(7)
        acc.update(
            rng.standard_normal((1, 2, 8)),
            rng.standard_normal((3, 2, 8)),
            rng.standard_normal((3, 2, 8)),
            np.array([0]),
            np.array([5, 6, 7]),  # all in the future
        )
        with pytest.raises(ValueError):
            acc.finalize()

    def test_empty_block_is_noop(self):
        acc = OnlineSoftmax(1, 2, 8)
        acc.update(
            np.zeros((1, 2, 8)),
            np.zeros((0, 2, 8)),
            np.zeros((0, 2, 8)),
            np.array([0]),
            np.zeros(0, dtype=int),
        )
        assert np.all(np.isneginf(acc.m))
