"""Tests for workload generation: datasets, arrivals, traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.arrival import PoissonArrivals, UniformArrivals
from repro.workloads.datasets import LEVAL, LVEVAL, MIXED, SHAREGPT, ZipfMixed
from repro.workloads.trace_gen import clone_requests, make_trace


class TestDatasets:
    @pytest.mark.parametrize(
        "dataset,lo,hi",
        [(SHAREGPT, 4, 2_300), (LEVAL, 2_700, 210_500), (LVEVAL, 15_100, 497_300)],
    )
    def test_published_input_ranges(self, dataset, lo, hi):
        """Sampled input lengths stay inside the paper's §7.1 ranges."""
        rng = np.random.default_rng(0)
        for _ in range(300):
            input_len, output_len = dataset.sample(rng)
            assert lo <= input_len <= hi
            assert output_len >= 1

    def test_dataset_ordering_by_scale(self):
        rng = np.random.default_rng(1)
        means = {}
        for dataset in (SHAREGPT, LEVAL, LVEVAL):
            means[dataset.name] = np.mean(
                [dataset.sample(rng)[0] for _ in range(300)]
            )
        assert means["ShareGPT"] < means["L-Eval"] < means["LV-Eval"]

    def test_mixed_spans_components(self):
        rng = np.random.default_rng(2)
        lens = [MIXED.sample(rng)[0] for _ in range(600)]
        assert min(lens) < 2_300
        assert max(lens) > 15_100

    def test_sharegpt_output_heavier_than_lveval(self):
        """ShareGPT is chatty (long outputs); LV-Eval answers are short."""
        rng = np.random.default_rng(3)
        share = np.mean([SHAREGPT.sample(rng)[1] for _ in range(300)])
        lv = np.mean([LVEVAL.sample(rng)[1] for _ in range(300)])
        assert share > lv


class TestZipfMixed:
    def test_higher_zipf_skews_shorter(self):
        rng_a = np.random.default_rng(4)
        rng_b = np.random.default_rng(4)
        gentle = ZipfMixed(name="z1", zipf=1.0)
        steep = ZipfMixed(name="z14", zipf=1.4)
        mean_gentle = np.mean([gentle.sample(rng_a)[0] for _ in range(300)])
        mean_steep = np.mean([steep.sample(rng_b)[0] for _ in range(300)])
        assert mean_steep < mean_gentle

    def test_caps_input_length(self):
        dataset = ZipfMixed(name="z", zipf=1.0, max_input_len=200_000)
        rng = np.random.default_rng(5)
        assert all(dataset.sample(rng)[0] <= 200_000 for _ in range(200))


class TestArrivals:
    def test_poisson_rate_approximate(self):
        rng = np.random.default_rng(6)
        times = PoissonArrivals(rate=10.0).times(5_000, rng)
        measured = len(times) / times[-1]
        assert measured == pytest.approx(10.0, rel=0.1)

    def test_poisson_monotone(self):
        rng = np.random.default_rng(7)
        times = PoissonArrivals(rate=2.0).times(100, rng)
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_uniform_gaps(self):
        times = UniformArrivals(rate=4.0).times(3)
        assert times == pytest.approx([0.25, 0.5, 0.75])

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)

    @given(rate=st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=20, deadline=None)
    def test_times_nonnegative_property(self, rate):
        rng = np.random.default_rng(8)
        times = PoissonArrivals(rate=rate).times(50, rng)
        assert all(t > 0 for t in times)


class TestTraceGeneration:
    def test_reproducible_with_seed(self):
        a = make_trace(SHAREGPT, rate=5.0, num_requests=20, seed=9)
        b = make_trace(SHAREGPT, rate=5.0, num_requests=20, seed=9)
        assert [(r.input_len, r.output_len, r.arrival_time) for r in a] == [
            (r.input_len, r.output_len, r.arrival_time) for r in b
        ]

    def test_different_seeds_differ(self):
        a = make_trace(SHAREGPT, rate=5.0, num_requests=20, seed=10)
        b = make_trace(SHAREGPT, rate=5.0, num_requests=20, seed=11)
        assert [r.input_len for r in a] != [r.input_len for r in b]

    def test_max_input_cap(self):
        trace = make_trace(LVEVAL, rate=1.0, num_requests=50, seed=12, max_input_len=20_000)
        assert all(r.input_len <= 20_000 for r in trace)

    def test_clone_resets_runtime_state(self):
        trace = make_trace(SHAREGPT, rate=5.0, num_requests=5, seed=13)
        trace[0].generated = 7
        trace[0].prefill_end = 1.0
        clones = clone_requests(trace)
        assert clones[0].generated == 0
        assert clones[0].prefill_end is None
        assert clones[0].request_id == trace[0].request_id
        assert clones[0].input_len == trace[0].input_len
