"""Span invariants under chaos: steal + migration + crash schedules.

Hypothesis drives crash plans against small real fleet runs with the
full observability stack armed, asserting the lifecycle-span invariants
that must hold under *any* schedule:

* **Taxonomy** — every span's phase is in :data:`SPAN_PHASES` and every
  span has ``end >= start``.
* **Ordering** — each request's spans are non-overlapping and
  chronologically ordered (the tracer closes one phase before opening
  the next, even as the request hops replicas through steals and
  failovers).
* **Birth** — every traced request's first span is ``queued`` (all
  lifecycles begin at arrival on some replica).
* **Coverage** — every request of the trace has at least one span, and
  a finished run leaves no span open (``finalize`` tagged none).
* **Ledger coherence** — the audit log's crash count matches the
  injector's, and every steal audit pairs src/dst replicas that exist.

The ``CI=1`` profile (tests/conftest.py) derandomizes all of this.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.systems import make_fleet
from repro.fleet import FaultPlan, ReplicaFault
from repro.obs import Observability, SPAN_PHASES
from repro.sessions import make_session_trace
from repro.workloads.datasets import SHAREGPT
from repro.workloads.trace_gen import clone_requests, make_trace

REPLICAS = 3
MIXED_TRACE = make_trace(SHAREGPT, rate=8.0, num_requests=14, seed=33)
SESSION_TRACE = make_session_trace(rate=4.0, num_sessions=4, seed=34)

fault_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=8.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=REPLICAS - 1),
        st.floats(min_value=0.5, max_value=5.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=5,
)


def assert_span_invariants(trace, obs) -> None:
    tracer = obs.tracer
    assert not tracer._open, "finalize left spans open"
    for span in tracer.spans:
        assert span.phase in SPAN_PHASES
        assert span.end >= span.start
    traced = {s.request_id for s in tracer.spans}
    assert traced == {r.request_id for r in trace}
    for request in trace:
        spans = tracer.spans_for(request.request_id)
        assert spans[0].phase == "queued", (
            f"request {request.request_id} was born in {spans[0].phase!r}"
        )
        for prev, nxt in zip(spans, spans[1:]):
            assert prev.end <= nxt.start + 1e-9, (
                f"request {request.request_id}: {prev.phase} "
                f"[{prev.start}, {prev.end}] overlaps {nxt.phase} "
                f"[{nxt.start}, {nxt.end}]"
            )
        # A finished run closes every lifecycle for real: no span was
        # synthesised shut by finalize.
        assert not any(s.attrs.get("open") for s in spans)


def assert_audit_coherence(fleet, obs, num_replicas) -> None:
    tracer = obs.tracer
    injector = fleet.policy.injector
    if injector is not None:
        assert len(tracer.of_kind("crash")) == len(injector.injected)
        assert len(tracer.of_kind("crash_skipped")) == len(injector.skipped)
    for steal in tracer.of_kind("steal"):
        assert 0 <= steal.payload["src"] < num_replicas
        assert 0 <= steal.payload["dst"] < num_replicas
        assert steal.payload["src"] != steal.payload["dst"]
    for route in tracer.of_kind("route"):
        assert route.component == "router"
        assert len(route.payload["scores"]) >= 1


class TestSpanChaosInvariants:
    @given(specs=fault_specs)
    @settings(max_examples=10, deadline=None)
    def test_spans_survive_any_crash_schedule(self, specs):
        """Steal + failover under arbitrary crashes: every request's
        span timeline stays ordered, typed, and complete."""
        plan = FaultPlan(
            [ReplicaFault(time=t, replica_id=r, downtime_s=d)
             for t, r, d in specs]
        )
        fleet = make_fleet(
            "loongserve", replicas=REPLICAS, router="round-robin",
            requests=MIXED_TRACE, num_gpus=4, steal=True, faults=plan,
        )
        obs = Observability()
        fleet.observe(obs)
        result = fleet.run(clone_requests(MIXED_TRACE))
        assert len(result.finished_requests) == len(MIXED_TRACE)
        assert_span_invariants(MIXED_TRACE, obs)
        assert_audit_coherence(fleet, obs, REPLICAS)

    @given(seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=6, deadline=None)
    def test_spans_with_migration_and_poisson_faults(self, seed):
        """The full stack — affinity routing, prefix caches, stealing,
        KV migration, autoscaling, stochastic crashes — keeps span
        context intact across every cross-replica handoff."""
        horizon = max(r.arrival_time for r in SESSION_TRACE)
        plan = FaultPlan.poisson(
            num_replicas=2, horizon_s=horizon, mtbf_s=horizon / 1.5,
            seed=seed, downtime_s=2.0,
        )
        fleet = make_fleet(
            "loongserve", replicas=2, router="affinity",
            requests=SESSION_TRACE, num_gpus=4, prefix_cache=True,
            autoscale=True, steal=True, migrate_kv=True,
            faults=plan if plan else None,
        )
        obs = Observability()
        fleet.observe(obs)
        result = fleet.run(clone_requests(SESSION_TRACE))
        assert len(result.finished_requests) == len(SESSION_TRACE)
        assert_span_invariants(SESSION_TRACE, obs)
        assert_audit_coherence(fleet, obs, 2)
        # Telemetry rode the control ticks one-for-one.
        assert len(obs.metrics.sample_times) == result.elastic.control_ticks

    @given(seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=5, deadline=None)
    def test_observing_chaos_changes_nothing(self, seed):
        """One seed, observed and unobserved runs: identical outcomes —
        the tracer must stay a pure observer under any schedule."""
        plan = FaultPlan.poisson(
            num_replicas=REPLICAS, horizon_s=5.0, mtbf_s=4.0,
            seed=seed, downtime_s=2.0,
        )
        outcomes = []
        for observe in (False, True):
            fleet = make_fleet(
                "loongserve", replicas=REPLICAS, router="round-robin",
                requests=MIXED_TRACE, num_gpus=4, steal=True,
                faults=plan if plan else None,
            )
            if observe:
                fleet.observe(Observability())
            result = fleet.run(clone_requests(MIXED_TRACE))
            outcomes.append(
                sorted(
                    (r.request_id, round(r.finish_time, 12), r.generated)
                    for r in result.finished_requests
                )
            )
        assert outcomes[0] == outcomes[1]
