"""Striped vs. contiguous-block (Ring Attention) token assignment.

The paper builds on *Striped* Attention because contiguous blocks are
causally imbalanced (§2.3).  Both layouts must produce identical
outputs; only the per-instance attention work differs.
"""

import numpy as np
import pytest

from repro.engine.instance import FunctionalInstance
from repro.engine.reference import ReferenceTransformer
from repro.engine.striped import (
    attention_pairs_per_instance,
    block_assignment,
    stripe_assignment,
    striped_prefill,
)
from repro.engine.weights import TransformerWeights


def make_weights() -> TransformerWeights:
    return TransformerWeights.random(
        hidden_size=32, num_heads=4, num_kv_heads=2, num_layers=2, seed=4
    )


def make_instances(weights, count):
    return [
        FunctionalInstance(i, weights.num_layers, weights.num_kv_heads, weights.head_dim)
        for i in range(count)
    ]


class TestBlockAssignment:
    def test_partition_complete(self):
        blocks = block_assignment(10, 3)
        merged = np.sort(np.concatenate(blocks))
        assert np.array_equal(merged, np.arange(10))

    def test_blocks_are_contiguous(self):
        for block in block_assignment(12, 4):
            assert np.array_equal(block, np.arange(block[0], block[-1] + 1))

    def test_ring_layout_matches_reference_output(self):
        weights = make_weights()
        reference = ReferenceTransformer(weights)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((14, weights.hidden_size))
        expected, _ = reference.prefill(x)
        run = striped_prefill(
            weights, x, make_instances(weights, 3), request_id=0,
            assignment=block_assignment(14, 3),
        )
        np.testing.assert_allclose(run.hidden, expected, atol=1e-10)

    def test_wrong_partition_count_rejected(self):
        weights = make_weights()
        with pytest.raises(ValueError, match="partitions"):
            striped_prefill(
                weights,
                np.zeros((8, weights.hidden_size)),
                make_instances(weights, 3),
                request_id=0,
                assignment=block_assignment(8, 2),
            )


class TestCausalBalance:
    def test_striped_is_balanced(self):
        pairs = attention_pairs_per_instance(stripe_assignment(4096, 4))
        assert max(pairs) / min(pairs) < 1.01

    def test_blocks_are_imbalanced(self):
        """The last contiguous block does ~(2sp-1)x the first block's
        attention work — the §2.3 motivation for striping."""
        pairs = attention_pairs_per_instance(block_assignment(4096, 4))
        assert pairs == sorted(pairs)
        assert pairs[-1] / pairs[0] > 5.0

    def test_striped_beats_blocks_on_bottleneck(self):
        """The prefill finishes when the slowest instance does; striping
        minimises that bottleneck."""
        striped = attention_pairs_per_instance(stripe_assignment(4096, 4))
        blocked = attention_pairs_per_instance(block_assignment(4096, 4))
        assert max(striped) < max(blocked)

    def test_total_work_identical(self):
        striped = attention_pairs_per_instance(stripe_assignment(1000, 4))
        blocked = attention_pairs_per_instance(block_assignment(1000, 4))
        assert sum(striped) == sum(blocked)
