"""Unit tests for the cluster substrate: GPUs, topology, instance mapping."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.gpu import A800_80GB, GPUSpec
from repro.cluster.topology import LinkKind, Topology


class TestGPUSpec:
    def test_a800_matches_datasheet(self):
        assert A800_80GB.peak_flops == pytest.approx(312e12)
        assert A800_80GB.memory_bytes == 80 * 2**30

    def test_sustained_rates_discounted(self):
        assert A800_80GB.sustained_flops < A800_80GB.peak_flops
        assert A800_80GB.sustained_bandwidth < A800_80GB.memory_bandwidth

    def test_compute_time_scales_linearly(self):
        t1 = A800_80GB.compute_time(1e12)
        t2 = A800_80GB.compute_time(2e12)
        assert t2 == pytest.approx(2 * t1)

    def test_rejects_negative_flops(self):
        with pytest.raises(ValueError):
            A800_80GB.compute_time(-1.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            GPUSpec(
                name="bad", peak_flops=1.0, memory_bandwidth=1.0,
                memory_bytes=1, compute_efficiency=1.5,
            )


class TestTopology:
    def test_single_node_all_nvlink(self):
        topo = Topology(num_gpus=8, gpus_per_node=8)
        for i in range(8):
            for j in range(8):
                if i != j:
                    assert topo.link(i, j).kind == LinkKind.NVLINK

    def test_cross_node_is_infiniband(self):
        topo = Topology(num_gpus=16, gpus_per_node=8)
        assert topo.link(0, 8).kind == LinkKind.INFINIBAND
        assert topo.link(3, 12).kind == LinkKind.INFINIBAND
        assert topo.link(8, 15).kind == LinkKind.NVLINK

    def test_self_link_free(self):
        topo = Topology(num_gpus=8, gpus_per_node=8)
        assert topo.transfer_time(2, 2, 1e9) == 0.0

    def test_nvlink_faster_than_ib(self):
        topo = Topology(num_gpus=16, gpus_per_node=8)
        intra = topo.transfer_time(0, 1, 1e9)
        inter = topo.transfer_time(0, 8, 1e9)
        assert intra < inter

    def test_min_bandwidth_bottleneck(self):
        topo = Topology(num_gpus=16, gpus_per_node=8)
        assert topo.min_bandwidth([0, 1, 2]) == topo.nvlink.bandwidth
        assert topo.min_bandwidth([0, 8]) == topo.infiniband.bandwidth

    def test_spans_nodes(self):
        topo = Topology(num_gpus=16, gpus_per_node=8)
        assert not topo.spans_nodes([0, 7])
        assert topo.spans_nodes([7, 8])

    def test_gpu_range_checked(self):
        topo = Topology(num_gpus=8, gpus_per_node=8)
        with pytest.raises(ValueError):
            topo.link(0, 8)

    def test_node_of(self):
        topo = Topology(num_gpus=16, gpus_per_node=8)
        assert topo.node_of(0) == 0
        assert topo.node_of(7) == 0
        assert topo.node_of(8) == 1


class TestCluster:
    def test_homogeneous_single_node(self):
        cluster = Cluster.homogeneous(num_gpus=8)
        assert cluster.num_gpus == 8
        assert cluster.num_nodes == 1

    def test_homogeneous_two_nodes(self):
        cluster = Cluster.homogeneous(num_gpus=16, gpus_per_node=8)
        assert cluster.num_nodes == 2
        assert cluster.nodes[1].gpu_ids == tuple(range(8, 16))

    def test_instance_gpus_contiguous(self):
        cluster = Cluster.homogeneous(num_gpus=8)
        assert cluster.instance_gpus(0, tensor_parallel=2) == [0, 1]
        assert cluster.instance_gpus(3, tensor_parallel=2) == [6, 7]

    def test_instance_gpus_tp8(self):
        cluster = Cluster.homogeneous(num_gpus=8)
        assert cluster.instance_gpus(0, tensor_parallel=8) == list(range(8))

    def test_instance_id_out_of_range(self):
        cluster = Cluster.homogeneous(num_gpus=8)
        with pytest.raises(ValueError):
            cluster.instance_gpus(4, tensor_parallel=2)

    def test_instance_bandwidth_parallel_links(self):
        cluster = Cluster.homogeneous(num_gpus=8)
        bw = cluster.instance_bandwidth(0, 1, tensor_parallel=2)
        assert bw == pytest.approx(2 * cluster.topology.nvlink.bandwidth)

    def test_cross_node_instance_bandwidth_uses_ib(self):
        cluster = Cluster.homogeneous(num_gpus=16, gpus_per_node=8)
        bw = cluster.instance_bandwidth(0, 4, tensor_parallel=2)
        assert bw == pytest.approx(2 * cluster.topology.infiniband.bandwidth)

    def test_total_memory(self):
        cluster = Cluster.homogeneous(num_gpus=8)
        assert cluster.total_memory_bytes == 8 * 80 * 2**30
